"""One hosted simulation session: sliced stepping, streaming, injection.

A :class:`Session` wraps an assembled :class:`~repro.core.system.InSituSystem`
(with observability attached) behind the engine's non-blocking
``begin_run``/``advance``/``finalize`` API.  The session manager calls
:meth:`Session.step_slice` repeatedly — each call runs at most
``manifest.tick_slice`` engine ticks, then drains the
:class:`~repro.obs.stream.StreamTap` into the session's SSE
:class:`~repro.serve.sse.EventBuffer` — so hundreds of sessions
interleave cooperatively on one event loop.

Sessions are plain synchronous objects (no asyncio in this module): the
daemon drives them from its loop, and the unit suite drives them
directly.

Decision injection
------------------
:meth:`inject` lets an external client steer a live run through the
:mod:`repro.policy` registries.  Four kinds:

* ``policy`` — attach a whole new policy overlay (wire format as in the
  manifest schema);
* ``limit`` — force a capacity limit through an attached policy's
  control method, one-shot;
* ``governor`` — swap an attached policy's governor for a new rule
  string (takes effect at the policy's next evaluation);
* ``control`` — fire a raw control action (registry name + limit) bound
  directly to the controller.

Every injection is recorded as an ``inject.<kind>`` decision event
before it acts, so the decision log — and therefore flight reports and
the SSE stream — attribute external steering for free.  A session that
received any injection reports ``injected: true`` and skips the golden
verdict (its trajectory is intentionally off the pinned rails).
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

from repro.obs.stream import StreamTap
from repro.serve.manifest import (
    SessionManifest,
    build_session_system,
    golden_verdict,
    render_manifest,
)
from repro.serve.sse import EventBuffer


class SessionState:
    """Session lifecycle states (plain strings on the wire)."""

    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    DONE = "done"
    FAILED = "failed"

    #: States a session can still step or accept injections in.
    LIVE = (CREATED, RUNNING, PAUSED)


class SessionError(RuntimeError):
    """Invalid session operation (maps to HTTP 400/409)."""


class Session:
    """A hosted run stepped in tick-budget slices."""

    def __init__(
        self,
        session_id: str,
        manifest: SessionManifest,
        max_buffered_events: int = 4096,
    ) -> None:
        self.id = session_id
        self.manifest = manifest
        self.system, self.obs = build_session_system(manifest)
        self.tap = StreamTap(self.obs)
        self.events = EventBuffer(max_events=max_buffered_events)
        self.state = SessionState.CREATED
        self.total_ticks = self.system.begin_run(manifest.duration_s)
        self.ticks_done = 0
        self.injections = 0
        self.summary_payload: dict[str, Any] | None = None
        self.error: str | None = None
        self._emit("hello", {
            "session": self.id,
            "manifest": render_manifest(manifest),
            "total_ticks": self.total_ticks,
        })

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clock_t(self) -> float:
        return self.system.engine.clock.t

    def info(self) -> dict[str, Any]:
        """The session descriptor returned by the HTTP endpoints."""
        return {
            "session": self.id,
            "state": self.state,
            "cell": self.manifest.cell,
            "ticks_done": self.ticks_done,
            "total_ticks": self.total_ticks,
            "sim_t": self.clock_t,
            "injections": self.injections,
            "last_event_id": self.events.last_id,
            "error": self.error,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.state != SessionState.CREATED:
            raise SessionError(f"cannot start a {self.state} session")
        self._set_state(SessionState.RUNNING)

    def pause(self) -> None:
        if self.state != SessionState.RUNNING:
            raise SessionError(f"cannot pause a {self.state} session")
        self._set_state(SessionState.PAUSED)

    def resume(self) -> None:
        if self.state != SessionState.PAUSED:
            raise SessionError(f"cannot resume a {self.state} session")
        self._set_state(SessionState.RUNNING)

    def step_slice(self) -> int:
        """Run one cooperative slice; returns the ticks executed.

        Only RUNNING sessions step.  When the run's tick budget is
        exhausted (or a stop condition ended it early) the session
        finalizes: summary + verdict events are emitted and the state
        moves to DONE.
        """
        if self.state != SessionState.RUNNING:
            return 0
        try:
            executed = self.system.advance(self.manifest.tick_slice)
            self.ticks_done += executed
            self._flush_tap()
            if self.system.remaining_steps <= 0:
                self._complete()
            return executed
        except Exception as exc:  # keep the daemon alive; fail the session
            self.error = f"{type(exc).__name__}: {exc}"
            self._set_state(SessionState.FAILED)
            self._emit("error", {"error": self.error, "t": self.clock_t})
            self._emit("end", {"session": self.id, "state": self.state})
            return 0

    # ------------------------------------------------------------------
    # Decision injection
    # ------------------------------------------------------------------
    def inject(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Apply one decision injection; returns an acknowledgement dict.

        Applied between slices by construction (the daemon and the
        stepping loop share one thread), so the injection lands at a
        well-defined tick boundary and the recorded event carries it.
        """
        if self.state not in SessionState.LIVE:
            raise SessionError(f"cannot inject into a {self.state} session")
        if not isinstance(payload, Mapping):
            raise SessionError("injection must be a JSON object")
        kind = payload.get("kind")
        handlers = {
            "policy": self._inject_policy,
            "limit": self._inject_limit,
            "governor": self._inject_governor,
            "control": self._inject_control,
        }
        if kind not in handlers:
            raise SessionError(
                f"unknown injection kind {kind!r}; known: {sorted(handlers)}"
            )
        ack = handlers[kind](payload)
        self.injections += 1
        self._flush_tap()  # stream the inject.* event immediately
        return {"session": self.id, "kind": kind, "t": self.clock_t, **ack}

    def _manager(self):
        return self.system.controller

    def _charger(self):
        return self.system.plant.bus.charger

    def _find_policy(self, name: Any):
        for policy in self._manager().policies:
            if policy.name == name:
                return policy
        attached = [p.name for p in self._manager().policies]
        raise SessionError(f"no attached policy {name!r}; attached: {attached}")

    def _record(self, kind: str, **data: Any) -> None:
        self.obs.decisions.record(self.clock_t, kind, "serve", **data)

    def _check_control_pairing(self, control_name: Any) -> None:
        from repro.serve.manifest import DVFS_CONTROLS

        if control_name in DVFS_CONTROLS and not hasattr(self._manager(), "duty"):
            raise SessionError(
                f"control {control_name!r} requires the insure controller; "
                f"this session runs {self.manifest.controller!r}"
            )

    def _inject_policy(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        from repro.policy.policy import Policy
        from repro.policy.registry import make_control, make_governor, make_signal
        from repro.serve.manifest import ManifestError, parse_policy

        try:
            spec = parse_policy(payload.get("policy"))
        except ManifestError as exc:
            raise SessionError(str(exc)) from None
        if any(p.name == spec.name for p in self._manager().policies):
            raise SessionError(f"policy {spec.name!r} already attached")
        self._check_control_pairing(spec.control)
        policy = Policy(
            name=spec.name,
            signal=make_signal(spec.signal, seed=self.manifest.seed),
            governor=make_governor(spec.governor),
            control=make_control(spec.control),
            interval_s=spec.interval_s,
        )
        self._record("inject.policy", policy=spec.name, signal=spec.signal,
                     governor=spec.governor, control=spec.control,
                     interval_s=spec.interval_s)
        self._manager().attach_policy(policy, charger=self._charger())
        return {"policy": spec.name, "describe": policy.describe()}

    def _inject_limit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        policy = self._find_policy(payload.get("policy"))
        limit = payload.get("limit")
        if not isinstance(limit, (int, float)) or isinstance(limit, bool):
            raise SessionError(f"limit must be a number, got {limit!r}")
        limit = float(limit)
        self._record("inject.limit", policy=policy.name, limit=limit)
        changed = policy.control.apply(limit, self.clock_t)
        return {"policy": policy.name, "limit": limit, "changed": bool(changed)}

    def _inject_governor(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        from repro.policy.registry import make_governor

        policy = self._find_policy(payload.get("policy"))
        spec = payload.get("governor")
        if not isinstance(spec, str) or not spec:
            raise SessionError(f"governor must be a rule string, got {spec!r}")
        try:
            governor = make_governor(spec)
        except ValueError as exc:
            raise SessionError(f"bad governor spec: {exc}") from None
        self._record("inject.governor", policy=policy.name, governor=spec,
                     previous=policy.governor.describe())
        policy.governor = governor
        policy._last_limit = None  # re-announce the limit at next evaluation
        return {"policy": policy.name, "governor": governor.describe()}

    def _inject_control(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        from repro.policy.registry import make_control

        name = payload.get("control")
        limit = payload.get("limit")
        if not isinstance(limit, (int, float)) or isinstance(limit, bool):
            raise SessionError(f"limit must be a number, got {limit!r}")
        try:
            control = make_control(name)
        except ValueError as exc:
            raise SessionError(str(exc)) from None
        self._check_control_pairing(name)
        control.bind(self._manager(), self._charger())
        control.source = f"serve:{self.id}"
        limit = float(limit)
        self._record("inject.control", control=name, limit=limit)
        changed = control.apply(limit, self.clock_t)
        return {"control": name, "limit": limit, "changed": bool(changed)}

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _emit(self, event: str, payload: Mapping[str, Any]) -> None:
        self.events.append(event, json.dumps(payload, sort_keys=True))

    def _set_state(self, state: str) -> None:
        self.state = state
        self._emit("state", {
            "session": self.id, "state": state,
            "t": self.clock_t, "ticks_done": self.ticks_done,
        })

    def _flush_tap(self) -> None:
        for event in self.tap.poll(self.clock_t):
            event_type = event.pop("type")
            self._emit(event_type, event)

    def _complete(self) -> None:
        summary = self.system.finalize()
        summary_dict = {
            name: value for name, value in vars(summary).items()
        }
        from dataclasses import asdict

        closure = asdict(self.obs.ledger.closure()) \
            if self.obs.ledger is not None and self.obs.ledger.attached else None
        verdict = None
        if self.injections == 0:
            cell_verdict = golden_verdict(self.manifest, summary_dict)
            if cell_verdict is not None:
                verdict = {
                    "cell": cell_verdict.cell,
                    "ok": cell_verdict.ok,
                    "mismatches": {
                        var: [got, want]
                        for var, (got, want) in sorted(
                            cell_verdict.mismatches.items())
                    },
                }
        self.summary_payload = {
            "session": self.id,
            "summary": summary_dict,
            "closure": closure,
            "decision_counts": self.obs.decisions.counts(),
            "alert_counts": self.obs.alerts.counts() if self.obs.alerts else {},
            "injected": self.injections > 0,
            "golden": verdict,
        }
        self._emit("summary", self.summary_payload)
        self._set_state(SessionState.DONE)
        self._emit("end", {"session": self.id, "state": self.state})
