"""CI smoke driver: three concurrent served sessions, hard assertions.

Run against an already-booted daemon (CI starts ``repro serve`` in the
background first)::

    python -m repro.serve.smoke --port 8737 --out serve-transcripts/

Exercises the service end-to-end the way the acceptance criteria demand:

1. **golden** — the pinned cell ``insure:seismic:cloudy`` at full
   horizon, no injections.  Must stream to completion with the ledger
   closing and the final summary matching the stored golden record
   within FleetValidator tolerances (``golden.ok``).
2. **scenario** — the pinned policy cell ``scenario-grid-hybrid``, same
   bar: closure + golden verdict.
3. **inject** — an explicit manifest carrying a carbon/duty-cap policy;
   mid-run the driver pauses the session, injects a limit, swaps the
   governor, resumes.  Must complete with the ledger closing, report
   ``injected: true``, and the streamed events must contain the
   ``inject.*`` decisions.

Every session's SSE stream is written as a JSONL transcript under
``--out`` (uploaded as a CI artifact), one event per line:
``{"id", "event", "data"}``.  Any assertion failure prints ``SMOKE
FAIL: ...`` and exits 1 — the CI job's exit code *is* the verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time as _time
from pathlib import Path

from repro.serve.client import ServeClient, SSEvent

GOLDEN_CELL = "insure:seismic:cloudy"
SCENARIO_CELL = "scenario-grid-hybrid"

#: Explicit manifest for the injection session: short horizon (the
#: pinned cells already prove the long one), policy attached from birth
#: so the limit/governor injections have a target.
INJECT_MANIFEST = {
    "controller": "insure",
    "workload": "seismic",
    "weather": "cloudy",
    "seed": 11,
    "duration_s": 6 * 3600.0,
    "tick_slice": 90,
    "policies": [
        {
            "name": "carbon-duty",
            "signal": "carbon",
            "governor": "step:420=80%:560=60%",
            "control": "duty_cap",
            "interval_s": 300.0,
        }
    ],
}


class SmokeFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


class SessionRun:
    """One session: create, stream to a transcript, verify."""

    def __init__(self, name: str, client: ServeClient, manifest: dict,
                 out_dir: Path) -> None:
        self.name = name
        self.client = client
        self.manifest = manifest
        self.transcript_path = out_dir / f"{name}.jsonl"
        self.events: list[SSEvent] = []
        self.session_id: str | None = None
        self.stream_error: Exception | None = None
        self._thread: threading.Thread | None = None

    def create(self, autostart: bool = True) -> None:
        info = self.client.create_session(self.manifest, autostart=autostart)
        self.session_id = info["session"]
        print(f"[{self.name}] created {self.session_id} "
              f"({info['total_ticks']} ticks)", flush=True)

    def start_streaming(self) -> None:
        self._thread = threading.Thread(target=self._stream, daemon=True)
        self._thread.start()

    def _stream(self) -> None:
        try:
            with self.transcript_path.open("w", encoding="utf-8") as fh:
                for event in self.client.stream(self.session_id):
                    self.events.append(event)
                    fh.write(json.dumps(
                        {"id": event.id, "event": event.event,
                         "data": event.data}) + "\n")
        except Exception as exc:  # surfaced by join()
            self.stream_error = exc

    def join(self, timeout: float) -> None:
        self._thread.join(timeout)
        _check(not self._thread.is_alive(),
               f"[{self.name}] stream still open after {timeout}s")
        if self.stream_error is not None:
            raise SmokeFailure(
                f"[{self.name}] stream failed: {self.stream_error}")

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def events_of(self, kind: str) -> list[SSEvent]:
        return [e for e in self.events if e.event == kind]

    def verify_common(self) -> dict:
        """Checks every session must pass; returns the summary payload."""
        kinds = {e.event for e in self.events}
        for required in ("hello", "state", "metrics", "ledger",
                         "summary", "end"):
            _check(required in kinds,
                   f"[{self.name}] no {required!r} event in stream "
                   f"(saw {sorted(kinds)})")
        ids = [e.id for e in self.events]
        _check(ids == sorted(ids) and len(set(ids)) == len(ids),
               f"[{self.name}] event ids not strictly increasing")

        # The streamed ledger deltas must close: every ledger event
        # carries the closure computed at that instant, and the last one
        # is the final word.
        last_ledger = json.loads(self.events_of("ledger")[-1].data)
        _check(last_ledger["closure"]["ok"],
               f"[{self.name}] streamed ledger closure failed: "
               f"{last_ledger['closure']}")

        streamed_summary = json.loads(self.events_of("summary")[-1].data)
        _check(streamed_summary["closure"] is not None
               and streamed_summary["closure"]["ok"],
               f"[{self.name}] summary closure failed: "
               f"{streamed_summary['closure']}")

        # The summary endpoint must agree with the streamed summary.
        endpoint_summary = self.client.summary(self.session_id)
        _check(endpoint_summary == streamed_summary,
               f"[{self.name}] /summary disagrees with streamed summary")
        return streamed_summary

    def verify_golden(self, summary: dict) -> None:
        _check(not summary["injected"],
               f"[{self.name}] expected injection-free session")
        verdict = summary["golden"]
        _check(verdict is not None,
               f"[{self.name}] no golden verdict (cell-backed full-horizon "
               f"session should have one)")
        _check(verdict["ok"],
               f"[{self.name}] golden mismatch vs {verdict['cell']}: "
               f"{verdict['mismatches']}")
        print(f"[{self.name}] golden verdict ok vs {verdict['cell']}",
              flush=True)

    def verify_injected(self, summary: dict, expected_kinds: list[str]) -> None:
        _check(summary["injected"],
               f"[{self.name}] expected injected: true")
        _check(summary["golden"] is None,
               f"[{self.name}] injected session must skip the golden verdict")
        streamed_kinds = [
            json.loads(e.data)["kind"] for e in self.events_of("decision")
            if json.loads(e.data)["kind"].startswith("inject.")
        ]
        for kind in expected_kinds:
            _check(kind in streamed_kinds,
                   f"[{self.name}] decision {kind!r} not streamed "
                   f"(saw {streamed_kinds})")
        print(f"[{self.name}] streamed injections: {streamed_kinds}",
              flush=True)


def run_smoke(host: str, port: int, out_dir: Path, timeout: float) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    client = ServeClient(host=host, port=port, timeout=timeout)
    health = client.wait_ready(timeout=30.0)
    print(f"daemon ready: {health}", flush=True)

    runs = {
        "golden": SessionRun("golden", client, {"cell": GOLDEN_CELL}, out_dir),
        "scenario": SessionRun("scenario", client, {"cell": SCENARIO_CELL},
                               out_dir),
        "inject": SessionRun("inject", client, INJECT_MANIFEST, out_dir),
    }
    # Create all three before streaming: they step concurrently on the
    # daemon's single loop, which is the point of the exercise.  The
    # inject session starts explicitly below so the pause provably lands
    # mid-run.
    runs["golden"].create()
    runs["scenario"].create()
    runs["inject"].create(autostart=False)
    for run in runs.values():
        run.start_streaming()

    # Steer the inject session mid-run: wait until it has stepped at
    # least one slice, then pause, force a limit, swap the governor,
    # resume.
    inject = runs["inject"]
    client.start(inject.session_id)
    deadline = _time.monotonic() + 30.0
    while client.get_session(inject.session_id)["ticks_done"] == 0:
        _check(_time.monotonic() < deadline,
               "[inject] session never stepped")
        _time.sleep(0.05)
    client.pause(inject.session_id)
    ack = client.inject(inject.session_id,
                        {"kind": "limit", "policy": "carbon-duty",
                         "limit": 0.6})
    print(f"[inject] limit ack: {ack}", flush=True)
    ack = client.inject(inject.session_id,
                        {"kind": "governor", "policy": "carbon-duty",
                         "governor": "const:0.7"})
    print(f"[inject] governor ack: {ack}", flush=True)
    client.resume(inject.session_id)

    for run in runs.values():
        run.join(timeout)

    summaries = {name: run.verify_common() for name, run in runs.items()}
    runs["golden"].verify_golden(summaries["golden"])
    runs["scenario"].verify_golden(summaries["scenario"])
    runs["inject"].verify_injected(
        summaries["inject"], ["inject.limit", "inject.governor"])

    # Daemon bookkeeping must agree: 3 sessions, all completed.
    metrics = client.metrics()
    print("--- daemon metrics ---", flush=True)
    for line in metrics.splitlines():
        if "serve" in line and not line.startswith("#"):
            print(line, flush=True)
    for name, run in runs.items():
        info = client.get_session(run.session_id)
        _check(info["state"] == "done",
               f"[{name}] final state {info['state']!r}, wanted done")
    print(f"SMOKE OK: 3 sessions done, transcripts in {out_dir}/", flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serve-daemon CI smoke: 3 concurrent sessions")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8737)
    parser.add_argument("--out", type=Path, default=Path("serve-transcripts"),
                        help="directory for SSE transcripts (JSONL)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-session stream timeout in seconds")
    args = parser.parse_args(argv)
    try:
        run_smoke(args.host, args.port, args.out, args.timeout)
    except SmokeFailure as exc:
        print(f"SMOKE FAIL: {exc}", file=sys.stderr, flush=True)
        return 1
    except Exception as exc:
        print(f"SMOKE ERROR: {type(exc).__name__}: {exc}",
              file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
