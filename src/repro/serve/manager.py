"""Cooperative session scheduler.

The :class:`SessionManager` owns every hosted :class:`~repro.serve.session.Session`
and steps the RUNNING ones round-robin, one tick slice each, yielding to
the event loop between slices.  Slice sizes come from each session's
manifest (``tick_slice``), so a fast smoke session and a full-day run
interleave fairly: wall-clock per scheduling turn is bounded, not ticks.

The manager is loop-agnostic: :meth:`step_once` is a plain synchronous
method (used directly by tests), and :meth:`run` is the asyncio pump the
daemon spawns.  Daemon-level counters (sessions created/completed,
slices stepped) live in a private
:class:`~repro.obs.registry.MetricsRegistry` exported at ``/metrics``.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable

from repro.obs.registry import MetricsRegistry
from repro.serve.manifest import SessionManifest
from repro.serve.session import Session, SessionError, SessionState


class CapacityError(SessionError):
    """Raised when the daemon is at ``max_sessions`` live sessions."""


class SessionManager:
    """Create, look up, schedule and reap sessions."""

    def __init__(self, max_sessions: int = 64,
                 max_buffered_events: int = 4096) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = int(max_sessions)
        self.max_buffered_events = int(max_buffered_events)
        self.sessions: dict[str, Session] = {}
        self.registry = MetricsRegistry()
        self._counter = 0
        self._wakeup: asyncio.Event | None = None
        self._created = self.registry.counter(
            "serve.sessions_created_total", "sessions created")
        self._completed = self.registry.counter(
            "serve.sessions_completed_total", "sessions run to completion")
        self._failed = self.registry.counter(
            "serve.sessions_failed_total", "sessions that raised")
        self._slices = self.registry.counter(
            "serve.slices_total", "cooperative slices stepped")
        self._injections = self.registry.counter(
            "serve.injections_total", "decision injections applied")
        self.registry.gauge(
            "serve.sessions_live", "sessions in a live state"
        ).set_function(lambda: float(len(self.live_sessions())))

    # ------------------------------------------------------------------
    # Session CRUD
    # ------------------------------------------------------------------
    def live_sessions(self) -> list[Session]:
        return [s for s in self.sessions.values()
                if s.state in SessionState.LIVE]

    def create(self, manifest: SessionManifest,
               autostart: bool = False) -> Session:
        if len(self.live_sessions()) >= self.max_sessions:
            raise CapacityError(
                f"at capacity ({self.max_sessions} live sessions); "
                f"reap finished sessions or raise --max-sessions"
            )
        self._counter += 1
        session = Session(f"s-{self._counter:04d}", manifest,
                          max_buffered_events=self.max_buffered_events)
        self.sessions[session.id] = session
        self._created.inc()
        if autostart:
            session.start()
        self.kick()
        return session

    def get(self, session_id: str) -> Session:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise KeyError(f"no session {session_id!r}") from None

    def remove(self, session_id: str) -> Session:
        """Reap a session (any state); its event buffer goes with it."""
        return self.sessions.pop(self.get(session_id).id)

    def list_info(self) -> list[dict]:
        return [s.info() for s in self.sessions.values()]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def runnable(self) -> Iterable[Session]:
        return [s for s in self.sessions.values()
                if s.state == SessionState.RUNNING]

    def step_once(self) -> int:
        """One scheduler turn: each RUNNING session steps one slice.

        Returns the total ticks executed (0 = everyone idle/done).
        """
        executed = 0
        for session in list(self.runnable()):
            before_state = session.state
            ticks = session.step_slice()
            executed += ticks
            if ticks:
                self._slices.inc()
            if before_state != session.state:
                if session.state == SessionState.DONE:
                    self._completed.inc()
                elif session.state == SessionState.FAILED:
                    self._failed.inc()
        return executed

    def kick(self) -> None:
        """Wake the asyncio pump (new session, resume, injection)."""
        if self._wakeup is not None:
            self._wakeup.set()

    def note_injection(self) -> None:
        self._injections.inc()

    async def run(self) -> None:
        """The daemon's stepping pump; runs until cancelled.

        Steps sessions as long as any are RUNNING, yielding to the loop
        after every session's slice so HTTP handling stays responsive;
        parks on an event when idle.
        """
        self._wakeup = asyncio.Event()
        try:
            while True:
                stepped_any = False
                for session in list(self.runnable()):
                    before_state = session.state
                    ticks = session.step_slice()
                    if ticks:
                        self._slices.inc()
                        stepped_any = True
                    if before_state != session.state:
                        if session.state == SessionState.DONE:
                            self._completed.inc()
                        elif session.state == SessionState.FAILED:
                            self._failed.inc()
                    await asyncio.sleep(0)  # let HTTP handlers run
                if not stepped_any:
                    self._wakeup.clear()
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), timeout=0.25)
                    except asyncio.TimeoutError:
                        pass
        finally:
            self._wakeup = None
