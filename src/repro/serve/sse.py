"""Server-Sent Events: wire framing, replay buffer, incremental parser.

SSE is the simplest streaming transport that works through every HTTP
stack: a ``text/event-stream`` response body made of blank-line-separated
event blocks, each block a run of ``field: value`` lines.  This module
implements the three pieces the daemon and its clients need:

* :func:`encode_event` — one event block, bytes on the wire;
* :class:`EventBuffer` — a bounded per-session replay buffer assigning
  monotonically increasing event ids, so a reconnecting client resumes
  from ``Last-Event-ID`` without losing (buffered) history;
* :class:`SSEParser` — an incremental byte-stream parser (the client
  half), tolerant of chunk boundaries anywhere, CRLF line endings and
  comment keep-alives.

Framing rules implemented per the WHATWG EventSource spec: multi-line
data is split across repeated ``data:`` lines and re-joined with ``\\n``
on parse; an event block without ``data`` is dispatched with an empty
payload; lines starting with ``:`` are comments (used as heartbeats).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable


def encode_event(
    data: str,
    event: str | None = None,
    id: int | str | None = None,
    retry: int | None = None,
) -> bytes:
    """Render one SSE event block (terminated by the blank line)."""
    lines: list[str] = []
    if id is not None:
        lines.append(f"id: {id}")
    if event is not None:
        lines.append(f"event: {event}")
    if retry is not None:
        lines.append(f"retry: {int(retry)}")
    # An empty payload still emits one "data:" line so every block
    # dispatches on the client; embedded newlines become repeated lines.
    for part in (data.split("\n") if data else [""]):
        lines.append(f"data: {part}")
    return ("\n".join(lines) + "\n\n").encode()


def encode_comment(text: str = "") -> bytes:
    """A comment line (client-ignored; serves as a keep-alive)."""
    return f": {text}\n\n".encode()


@dataclass(frozen=True)
class BufferedEvent:
    """One event held in a session's replay buffer."""

    id: int
    event: str
    data: str

    def encode(self) -> bytes:
        return encode_event(self.data, event=self.event, id=self.id)


class EventBuffer:
    """Bounded append-only event store with id-based replay.

    Ids increase monotonically from 1 and never reset, so a client's
    ``Last-Event-ID`` is unambiguous even after the buffer has dropped
    old events.  ``listeners`` receive each appended event synchronously
    — the daemon registers queue-pushing callbacks per subscriber; unit
    tests register plain list appends.
    """

    def __init__(self, max_events: int = 4096) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = int(max_events)
        self._events: list[BufferedEvent] = []
        self._next_id = 1
        self._listeners: list[Callable[[BufferedEvent], None]] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def last_id(self) -> int:
        """Id of the most recently appended event (0 = none yet)."""
        return self._next_id - 1

    @property
    def first_buffered_id(self) -> int | None:
        """Oldest id still replayable, or None when the buffer is empty."""
        return self._events[0].id if self._events else None

    def append(self, event: str, data: str) -> BufferedEvent:
        """Store an event, assign its id, and notify listeners."""
        buffered = BufferedEvent(id=self._next_id, event=event, data=data)
        self._next_id += 1
        self._events.append(buffered)
        if len(self._events) > self.max_events:
            del self._events[: len(self._events) - self.max_events]
        for listener in list(self._listeners):
            listener(buffered)
        return buffered

    def events_after(self, last_id: int) -> list[BufferedEvent]:
        """Buffered events with id > ``last_id`` (replay on reconnect).

        ``last_id=0`` replays everything still buffered.  Ids below the
        buffer's oldest entry replay from the oldest — the client lost
        whatever was dropped, which is the standard SSE contract for a
        bounded buffer.
        """
        # Events are id-ordered and dense; binary search is overkill at
        # the buffer sizes sessions use.
        return [e for e in self._events if e.id > last_id]

    def subscribe(self, listener: Callable[[BufferedEvent], None]) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[BufferedEvent], None]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass


@dataclass
class ParsedEvent:
    """One event decoded from a ``text/event-stream`` byte stream."""

    data: str
    event: str = "message"
    id: int | None = None


class SSEParser:
    """Incremental ``text/event-stream`` decoder.

    Feed it raw bytes as they arrive; it yields completed events.  State
    carries across :meth:`feed` calls, so chunk boundaries may fall
    anywhere — mid-line, mid-UTF-8 sequence, or between the lines of one
    block.
    """

    def __init__(self) -> None:
        self._buffer = b""
        self._data_lines: list[str] = []
        self._event_type = ""
        self._event_id: int | None = None
        self.last_event_id: int | None = None

    def feed(self, chunk: bytes) -> list[ParsedEvent]:
        """Consume ``chunk``; return every event completed by it."""
        self._buffer += chunk
        events: list[ParsedEvent] = []
        while True:
            line, sep, rest = self._buffer.partition(b"\n")
            if not sep:
                break
            self._buffer = rest
            events.extend(self._feed_line(line.rstrip(b"\r").decode("utf-8")))
        return events

    def _feed_line(self, line: str) -> Iterable[ParsedEvent]:
        if line == "":
            if not self._data_lines and not self._event_type:
                return []  # stray blank line / comment terminator
            event = ParsedEvent(
                data="\n".join(self._data_lines),
                event=self._event_type or "message",
                id=self._event_id,
            )
            self._data_lines = []
            self._event_type = ""
            self._event_id = None
            return [event]
        if line.startswith(":"):
            return []  # comment / keep-alive
        name, sep, value = line.partition(":")
        if not sep:
            name, value = line, ""
        if value.startswith(" "):
            value = value[1:]
        if name == "data":
            self._data_lines.append(value)
        elif name == "event":
            self._event_type = value
        elif name == "id":
            try:
                self._event_id = int(value)
            except ValueError:
                self._event_id = None
            else:
                self.last_event_id = self._event_id
        return []
