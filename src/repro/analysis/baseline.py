"""Committed-baseline support for ``repro lint``.

A baseline records the fingerprints of known findings so a rule can be
introduced (or tightened) before the whole tree is clean: existing
findings are parked in a reviewed, committed JSON file and only *new*
findings fail the build.  Matching is count-aware — if the baseline
holds two occurrences of a fingerprint and a third appears, the third is
reported.

The file is plain sorted JSON so diffs review like code::

    repro lint --write-baseline          # park today's findings
    repro lint --baseline                # report only what's new
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.core import Finding

BASELINE_VERSION = 1

#: Default location, resolved against the working directory (the repo
#: root in CI and normal checkouts).
DEFAULT_BASELINE_NAME = ".lint-baseline.json"


@dataclass
class Baseline:
    """Parked findings, keyed by fingerprint with occurrence counts."""

    entries: dict[str, dict[str, Any]] = field(default_factory=dict)

    def counts(self) -> Counter:
        return Counter(
            {fp: int(entry.get("count", 1)) for fp, entry in self.entries.items()}
        )

    def __len__(self) -> int:
        return sum(int(entry.get("count", 1)) for entry in self.entries.values())


def write_baseline(findings: list[Finding], path: Path | str) -> Path:
    """Serialize ``findings`` as the new baseline; returns the path."""
    grouped: dict[str, dict[str, Any]] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        fp = finding.fingerprint()
        if fp in grouped:
            grouped[fp]["count"] += 1
        else:
            grouped[fp] = {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "count": 1,
            }
    payload = {
        "version": BASELINE_VERSION,
        "entries": dict(sorted(grouped.items())),
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def load_baseline(path: Path | str) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    source = Path(path)
    if not source.exists():
        return Baseline()
    payload = json.loads(source.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {source} "
            f"(expected {BASELINE_VERSION}); regenerate with "
            f"`repro lint --write-baseline`"
        )
    entries = payload.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline {source}: entries must be an object")
    return Baseline(entries=dict(entries))


def filter_findings(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], int]:
    """Split findings into (new, baselined-count).

    Occurrences beyond a fingerprint's baselined count escape, in source
    order, so regressions duplicating a parked finding still fail.
    """
    budget = baseline.counts()
    fresh: list[Finding] = []
    matched = 0
    for finding in sorted(findings, key=Finding.sort_key):
        fp = finding.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched
