"""Rule: kernel code must be deterministic and simulation-clock driven.

The reproduction's results are validated bit-for-bit against committed
golden traces; any wall-clock read or unseeded randomness inside the
simulation kernel silently breaks that contract.  This rule bans:

* wall-clock reads (``time.time``, ``datetime.now``, ...),
* the stdlib ``random`` module entirely,
* unseeded ``numpy.random`` (the legacy global-state API, and
  ``default_rng()`` called without an explicit seed),
* iteration over unordered sets (``for x in {...}``, set comprehensions
  as iterables) whose order varies across interpreter runs,

inside the kernel packages (``repro.sim``, ``repro.core``,
``repro.battery``, ``repro.policy``).  Wall-clock time is legal in the
service layer (``repro.serve``) and observability exporters
(``repro.obs``), which timestamp output for humans, not for physics.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import Finding, ImportMap, ModuleSource, Rule
from repro.analysis.registry import register_rule

#: Packages whose modules feed simulated physics and must be replayable.
KERNEL_PACKAGES: tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.battery",
    "repro.policy",
)

#: Wall-clock reads: calling any of these inside the kernel is a finding.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` names that are *legal* in kernel code: constructing a
#: generator from an explicit seed, and type/seed plumbing.
_NP_RANDOM_OK = frozenset(
    {
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
    }
)


@register_rule
class DeterminismRule(Rule):
    id: ClassVar[str] = "determinism"
    description: ClassVar[str] = (
        "no wall-clock, stdlib random, unseeded numpy.random, or "
        "unordered-set iteration in kernel packages"
    )

    def __init__(self, packages: tuple[str, ...] = KERNEL_PACKAGES) -> None:
        self.packages = packages

    def check_module(self, module: ModuleSource) -> list[Finding]:
        if not module.in_package(*self.packages):
            return []
        imports = ImportMap(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, imports, node))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                findings.extend(self._check_iter(module, imports, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    findings.extend(self._check_iter(module, imports, gen.iter))
        return findings

    def _check_call(
        self, module: ModuleSource, imports: ImportMap, node: ast.Call
    ) -> list[Finding]:
        target = imports.resolve_call(node.func)
        if target is None:
            return []
        if target in _CLOCK_CALLS:
            return [module.finding(
                self.id, node,
                f"wall-clock call {target}() in kernel code; simulated time "
                f"comes from the engine Clock (wall-clock is only legal in "
                f"repro.serve / repro.obs exporters)",
            )]
        if target == "random" or target.startswith("random."):
            return [module.finding(
                self.id, node,
                f"stdlib {target}() draws from unseeded global state; use a "
                f"numpy Generator seeded from the run config",
            )]
        if target.startswith("numpy.random."):
            if target in _NP_RANDOM_OK:
                return []
            if target == "numpy.random.default_rng":
                if node.args or node.keywords:
                    return []
                return [module.finding(
                    self.id, node,
                    "numpy.random.default_rng() without a seed is entropy-"
                    "seeded; pass an explicit seed or SeedSequence",
                )]
            return [module.finding(
                self.id, node,
                f"{target}() uses numpy's global random state; use a "
                f"Generator seeded from the run config",
            )]
        return []

    def _check_iter(
        self, module: ModuleSource, imports: ImportMap, iter_node: ast.AST
    ) -> list[Finding]:
        unordered = False
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            unordered = True
        elif isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                unordered = True
        if not unordered:
            return []
        return [module.finding(
            self.id, iter_node,
            "iteration over an unordered set; wrap in sorted(...) so "
            "traversal order is reproducible across interpreter runs",
        )]
