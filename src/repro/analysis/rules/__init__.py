"""Built-in analysis rules.

Importing this package registers every built-in rule with
:mod:`repro.analysis.registry`; the registry does so lazily on first
lookup, mirroring how :mod:`repro.policy` loads its built-in governors.
"""

from repro.analysis.rules.asynchygiene import AsyncHygieneRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.parity import KernelParityRule
from repro.analysis.rules.purity import ObserverPurityRule
from repro.analysis.rules.units import UnitDisciplineRule

__all__ = [
    "AsyncHygieneRule",
    "DeterminismRule",
    "KernelParityRule",
    "ObserverPurityRule",
    "UnitDisciplineRule",
]
