"""Rule: unit-suffixed quantities must not mix across units.

The codebase encodes physical units in identifier suffixes — ``_wh``
(watt-hours), ``_ah`` (amp-hours), ``_w`` (watts), ``_amps``,
``_frac`` — a convention the compiler cannot check.  This rule infers a
unit from the suffix of every Name/Attribute (and from the called
function's name, since helpers follow the same convention) and flags
expressions that combine two *different known* units where the result
would be physically meaningless:

* additive arithmetic (``+``/``-``, including augmented assignment),
* ordered comparison (``<``, ``<=``, ``>``, ``>=``),
* plain assignment of one unit-suffixed name to another,
* ``min``/``max`` over mixed-unit arguments.

Multiplication and division are exempt (they legitimately change units:
``power_w * hours_h`` is energy), as are operands whose unit cannot be
inferred.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import Finding, ModuleSource, Rule
from repro.analysis.registry import register_rule

#: identifier suffix -> canonical unit label.  Suffixes are the final
#: ``_``-separated segment of a name, lower-cased.
SUFFIX_UNITS: dict[str, str] = {
    "wh": "Wh",
    "kwh": "kWh",
    "mwh": "MWh",
    "ah": "Ah",
    "w": "W",
    "kw": "kW",
    "amps": "A",
    "v": "V",
    "s": "s",
    "seconds": "s",
    "h": "h",
    "hours": "h",
    "minutes": "min",
    "pct": "%",
    "frac": "fraction",
    "fraction": "fraction",
    "soc": "fraction",
    "gb": "GB",
    "wm2": "W/m^2",
}

#: Unit groups that are freely interchangeable (same dimension and the
#: codebase deliberately converts at use sites would still be flagged —
#: we only merge identical dimensions written with one spelling).
_ALIASES: dict[str, str] = {}

_ADDITIVE = (ast.Add, ast.Sub)
_ORDERED = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def infer_unit(node: ast.AST) -> str | None:
    """Unit implied by an expression, or None when indeterminate.

    Names/attributes use the suffix convention; calls inherit from the
    called function's name (``solar_w()``); parenthesised arithmetic and
    conditional expressions propagate their operands' unit when it is
    unambiguous.
    """
    if isinstance(node, ast.Name):
        return _suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _suffix_unit(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return _suffix_unit(func.id)
        if isinstance(func, ast.Attribute):
            return _suffix_unit(func.attr)
        return None
    if isinstance(node, ast.UnaryOp):
        return infer_unit(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
        left = infer_unit(node.left)
        right = infer_unit(node.right)
        if left is not None and right is not None and left == right:
            return left
        return left if right is None else right if left is None else None
    if isinstance(node, ast.IfExp):
        body = infer_unit(node.body)
        orelse = infer_unit(node.orelse)
        if body == orelse:
            return body
        return None
    return None


def _suffix_unit(name: str) -> str | None:
    suffix = name.rsplit("_", 1)[-1].lower()
    unit = SUFFIX_UNITS.get(suffix)
    if unit is None:
        return None
    return _ALIASES.get(unit, unit)


@register_rule
class UnitDisciplineRule(Rule):
    id: ClassVar[str] = "unit-discipline"
    description: ClassVar[str] = (
        "no additive arithmetic, comparison, or assignment across "
        "different unit suffixes (_wh, _ah, _w, _amps, _frac, ...)"
    )

    def check_module(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
                self._pairwise(module, node, node.left, node.right,
                               "arithmetic", findings)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for op, left, right in zip(node.ops, operands, operands[1:], strict=False):
                    if isinstance(op, _ORDERED):
                        self._pairwise(module, node, left, right,
                                       "comparison", findings)
            elif isinstance(node, ast.Assign):
                value_unit = infer_unit(node.value)
                if value_unit is None:
                    continue
                for target in node.targets:
                    target_unit = infer_unit(target)
                    if target_unit is not None and target_unit != value_unit:
                        findings.append(module.finding(
                            self.id, node,
                            f"assigning a {value_unit} value to a "
                            f"{target_unit}-suffixed name",
                        ))
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _ADDITIVE):
                self._pairwise(module, node, node.target, node.value,
                               "augmented assignment", findings)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in ("min", "max"):
                    units = {u for u in map(infer_unit, node.args) if u is not None}
                    if len(units) > 1:
                        findings.append(module.finding(
                            self.id, node,
                            f"{func.id}() over mixed units "
                            f"({', '.join(sorted(units))})",
                        ))
        return findings

    def _pairwise(
        self,
        module: ModuleSource,
        anchor: ast.AST,
        left: ast.AST,
        right: ast.AST,
        what: str,
        findings: list[Finding],
    ) -> None:
        left_unit = infer_unit(left)
        right_unit = infer_unit(right)
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        findings.append(module.finding(
            self.id, anchor,
            f"mixed-unit {what}: {left_unit} vs {right_unit}",
        ))
