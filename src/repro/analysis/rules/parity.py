"""Rule: every scalar-kernel state mutation has a fleet-kernel twin.

The vectorized fleet kernel (:mod:`repro.sim.fleet.kernel`) re-implements
the scalar per-site tick as structure-of-arrays numpy ops.  The two
kernels are validated numerically, but nothing stops a new piece of
scalar state from being added without a fleet counterpart — the fleet
run then silently diverges.  This rule closes that gap structurally:

1. it inventories every attribute mutated by scalar-kernel classes
   outside construction (``__init__``/``__post_init__``/``bind``/
   ``attach``), attributing writes through collaborator objects
   (``manager.duty = ...`` inside a control) to the enclosing class;
2. each ``Class.attr`` must appear either in :data:`FIELD_MAP` (with the
   fleet array(s) that mirror it) or in :data:`NOT_PORTED` (with a
   reviewed reason why the fleet kernel does not need it);
3. every mapped fleet array must actually be written somewhere in the
   fleet modules, and map entries that no longer correspond to a scalar
   mutation are reported as stale.

The tables below are part of the reviewed contract: adding scalar state
means either porting it to the fleet kernel and extending
:data:`FIELD_MAP`, or recording in :data:`NOT_PORTED` why fleet runs can
ignore it.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import (
    Finding,
    ModuleSource,
    Project,
    Rule,
    attribute_root,
)
from repro.analysis.registry import register_rule

#: Modules that make up the scalar tick kernel.
SCALAR_MODULES: tuple[str, ...] = (
    "repro.battery.kibam",
    "repro.battery.unit",
    "repro.battery.wear",
    "repro.battery.charger",
    "repro.cluster.server",
    "repro.cluster.rack",
    "repro.cluster.allocator",
    "repro.cluster.vm",
    "repro.workloads.base",
    "repro.workloads.video",
    "repro.workloads.seismic",
    "repro.telemetry.metrics",
    "repro.power.bus",
    "repro.power.sensors",
    "repro.core.sensing",
    "repro.core.baseline",
    "repro.core.spatial",
    "repro.core.temporal",
    "repro.core.controller_base",
    "repro.core.system",
    "repro.policy.controls",
)

#: Modules holding the vectorized mirror.
FLEET_MODULES: tuple[str, ...] = (
    "repro.sim.fleet.kernel",
    "repro.sim.fleet.controllers",
)

#: Constructors and wiring methods whose writes are initialization, not
#: per-tick state evolution.  ``bind*``/``attach*`` prefixes cover the
#: plant-wiring idiom (``bind``, ``attach_storage``, ...).
_INIT_METHODS = frozenset({"__init__", "__post_init__"})
_INIT_PREFIXES = ("bind", "attach")


def _is_wiring_method(name: str) -> bool:
    return name in _INIT_METHODS or name.startswith(_INIT_PREFIXES)

#: ``Class.attr`` (scalar) -> fleet array name(s) that mirror it.
FIELD_MAP: dict[str, tuple[str, ...]] = {
    "KiBaM.y1": ("y1",),
    "KiBaM.y2": ("y2",),
    "BatteryUnit.mode": ("mode",),
    "BatteryUnit.last_current": ("last_i",),
    "WearModel.discharge_ah": ("wear_dis",),
    "WearModel.weighted_ah": ("wear_wt",),
    "Server.state": ("sstate",),
    "Server.duty": ("duty_deci",),
    "Server.crashes": ("crashes",),
    "Server.on_off_cycles": ("on_off",),
    "Server._transition_left": ("stimer",),
    "ServerRack._last_compute_seconds": ("last_compute",),
    "NodeAllocator.target_vms": ("alloc_target",),
    "NodeAllocator.vm_ctrl_ops": ("vm_ops",),
    "VirtualMachine.running": ("placed",),
    "VirtualMachine.checkpointed": ("head_ckpt",),
    "Job.done_gb": ("head_done",),
    "Job.checkpoint_gb": ("head_ckpt",),
    "Job.completion_t": ("delay_sum", "delay_count"),
    "Workload.processed_gb": ("processed",),
    "Workload.deadline_total": ("dl_total",),
    "Workload.deadline_misses": ("dl_miss",),
    "Workload.crash_count": ("crash_count",),
    "Workload._since_checkpoint": ("_since_ckpt",),
    "MetricsCollector._uptime_s": ("uptime_s",),
    "MetricsCollector._stored_wh_integral": ("stored_int",),
    "MetricsCollector._load_energy_wh": ("load_wh",),
    "MetricsCollector._effective_energy_wh": ("eff_wh",),
    "MetricsCollector._solar_energy_wh": ("solar_wh",),
    "MetricsCollector._solar_used_wh": ("used_wh",),
    "MetricsCollector._curtailed_wh": ("curt_wh",),
    "MetricsCollector._min_voltage": ("min_v",),
    "MetricsCollector._since_voltage_sample": ("_since_vsample",),
    "MetricsCollector._elapsed": ("_elapsed",),
    "PowerBus.last_report": (
        "_rep_solar_to_load", "_rep_charge_power", "_rep_curtailed",
        "_metrics_demand",
    ),
    "Transducer._noise_buf": ("_blk_v", "_blk_i"),
    "BatteryTelemetry.voltage": ("sense_v",),
    "BatteryTelemetry.current": ("sense_i",),
    "BatteryTelemetry.soc_estimate": ("est",),
    "BatteryTelemetry.discharge_ah": ("sense_dis",),
    "BatteryTelemetry.rest_seconds": ("rest_s",),
    "BaselineController.vm_target": ("vm_target",),
    "BaselineController.buffer_online": ("buffer_online",),
    "BaselineController._trip_pending": ("trip_pending",),
    "BaselineController._since_upscale": ("since_up",),
    "BaselineController._elapsed": ("_ctl_elapsed",),
    "SpatialPolicy._elastic_bonus": ("elastic_bonus",),
    "PlantCoupler.shed_events": ("crash_count",),
    "PlantCoupler.last_server_demand_w": ("_metrics_demand",),
    "PowerManager.solar_ema_w": ("ema",),
    "PowerManager.solar_ema_slow_w": ("ema_slow",),
    "DutyCapControl.duty": ("duty_deci",),
    "VmRetargetControl.vm_target": ("vm_target",),
    "ChargeCurrentCapControl.cap_fraction": ("charge_cap",),
}

#: ``Class.attr`` deliberately not mirrored, with the reviewed reason.
NOT_PORTED: dict[str, str] = {
    "BatteryUnit.gassing_ah": "ledger-only loss accumulator",
    "BatteryUnit.self_discharge_ah": "ledger-only loss accumulator",
    "BatteryUnit._tv_y1": "terminal-voltage memo; fleet recomputes per tick",
    "BatteryUnit._tv_current": "terminal-voltage memo; fleet recomputes per tick",
    "BatteryUnit._tv_value": "terminal-voltage memo; fleet recomputes per tick",
    "BatteryUnit._mdc_key": "max-discharge-current memo",
    "BatteryUnit._mdc_value": "max-discharge-current memo",
    "WearModel.charge_ah": "not consumed by RunSummary",
    "ServerRack.compute_seconds_total": (
        "lifetime aggregate; fleet derives throughput from processed GB"
    ),
    "ServerRack._vm_counter": "VM identity naming only",
    "VideoSurveillance._accumulated_s": "arrival schedule precomputed (n_by_tick)",
    "VideoSurveillance._chunk_counter": "arrival schedule precomputed (n_by_tick)",
    "SeismicAnalysis._job_counter": "arrival schedule precomputed (arr_t)",
    "Workload.lost_gb": (
        "fleet deducts crash losses from `processed` directly; lost_gb is "
        "obs-only"
    ),
    "Workload.size_gb": "storage overflow (drop-oldest) not modeled in fleet",
    "Workload.checkpoint_gb": (
        "storage overflow (drop-oldest) not modeled in fleet"
    ),
    "Workload.dropped_gb": (
        "storage overflow (drop-oldest) not modeled in fleet"
    ),
    "MetricsCollector._checkpoint_energy_wh": "ledger-only accumulator",
    "PowerBus.e_solar_wh": "ledger edge, obs-only",
    "PowerBus.e_solar_to_load_wh": "ledger edge, obs-only",
    "PowerBus.e_battery_to_load_wh": "ledger edge, obs-only",
    "PowerBus.e_unserved_wh": "ledger edge, obs-only",
    "PowerBus.e_charge_bus_wh": "ledger edge, obs-only",
    "PowerBus.e_charge_terminal_wh": "ledger edge, obs-only",
    "PowerBus.e_curtailed_wh": "ledger edge, obs-only",
    "PowerBus.e_demand_bus_wh": "ledger edge, obs-only",
    "PowerBus.e_server_wall_wh": "ledger edge, obs-only",
    "Transducer._noise_pos": "slot derived from tick index % noise_block",
    "BatteryTelemetry.gain": "fault injection; faulted cells are not batchable",
    "BaselineController.checkpoint_stops": "not a RunSummary field",
    "SpatialPolicy.unused_budget_ah": (
        "daily rollover credit; single-day fleet horizons never observe it"
    ),
    "PlantCoupler.last_report": "scratch mirrored by the _rep_* arrays",
    "InSituSystem._steps_done": "sliced-run host bookkeeping",
    "InSituSystem._total_steps": "sliced-run host bookkeeping",
    "DutyCapControl._last_cap": "idempotence memo",
    "CheckpointShedControl._armed": "checkpoint_shed raises FleetUnsupported",
    "CheckpointShedControl.checkpoint_stops": (
        "checkpoint_shed raises FleetUnsupported"
    ),
    "CheckpointShedControl.vm_target": "checkpoint_shed raises FleetUnsupported",
}


def _scalar_mutations(
    module: ModuleSource,
) -> dict[str, tuple[ModuleSource, ast.AST]]:
    """``Class.attr`` -> first mutation site for one scalar module."""
    sites: dict[str, tuple[ModuleSource, ast.AST]] = {}
    for cls in module.tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _is_wiring_method(method.name):
                continue
            # Names bound to freshly-constructed objects are local return
            # values (e.g. ``decision = SpatialDecision()``); writes into
            # them are initialization of the result, not state evolution.
            local_objects: set[str] = set()
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_objects.add(target.id)
            local_objects.discard("self")
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        for leaf in _leaves(target):
                            attr = _written_attr(leaf)
                            if attr is None:
                                continue
                            root = attribute_root(
                                leaf.value if isinstance(leaf, ast.Subscript)
                                else leaf
                            )
                            if (
                                isinstance(root, ast.Name)
                                and root.id in local_objects
                            ):
                                continue
                            key = f"{cls.name}.{attr}"
                            sites.setdefault(key, (module, node))
    return sites


def _leaves(target: ast.AST) -> list[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[ast.AST] = []
        for element in target.elts:
            out.extend(_leaves(element))
        return out
    if isinstance(target, ast.Starred):
        return _leaves(target.value)
    return [target]


def _written_attr(leaf: ast.AST) -> str | None:
    """Attribute name written by an assignment leaf (Name-rooted only)."""
    node = leaf
    if isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    if not isinstance(attribute_root(node), ast.Name):
        return None
    return node.attr


def _fleet_writes(module: ModuleSource) -> set[str]:
    """All array attribute names written anywhere in a fleet module."""
    written: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for leaf in _leaves(target):
                    attr = _written_attr(leaf)
                    if attr is not None:
                        written.add(attr)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("fill", "put")
                and isinstance(func.value, ast.Attribute)
            ):
                written.add(func.value.attr)
    return written


@register_rule
class KernelParityRule(Rule):
    id: ClassVar[str] = "kernel-parity"
    description: ClassVar[str] = (
        "scalar tick-kernel state mutations must map to fleet kernel "
        "array ops (or a reviewed not-ported entry)"
    )

    def __init__(
        self,
        scalar_modules: tuple[str, ...] = SCALAR_MODULES,
        fleet_modules: tuple[str, ...] = FLEET_MODULES,
        field_map: dict[str, tuple[str, ...]] | None = None,
        not_ported: dict[str, str] | None = None,
    ) -> None:
        self.scalar_modules = scalar_modules
        self.fleet_modules = fleet_modules
        self.field_map = FIELD_MAP if field_map is None else field_map
        self.not_ported = NOT_PORTED if not_ported is None else not_ported

    def check_project(self, project: Project) -> list[Finding]:
        scalar_mods = [
            mod for name in self.scalar_modules
            if (mod := project.get(name)) is not None
        ]
        fleet_mods = [
            mod for name in self.fleet_modules
            if (mod := project.get(name)) is not None
        ]
        if not scalar_mods or not fleet_mods:
            return []

        mutations: dict[str, tuple[ModuleSource, ast.AST]] = {}
        for mod in scalar_mods:
            for key, site in _scalar_mutations(mod).items():
                mutations.setdefault(key, site)
        fleet_written: set[str] = set()
        for mod in fleet_mods:
            fleet_written |= _fleet_writes(mod)

        findings: list[Finding] = []
        anchor = fleet_mods[0]
        for key in sorted(mutations):
            if key in self.not_ported:
                continue
            mapped = self.field_map.get(key)
            site_mod, site_node = mutations[key]
            if mapped is None:
                findings.append(site_mod.finding(
                    self.id, site_node,
                    f"scalar kernel mutates {key} with no fleet mapping; "
                    f"port it to repro.sim.fleet and extend FIELD_MAP, or "
                    f"record it in NOT_PORTED with a reason",
                ))
                continue
            missing = [arr for arr in mapped if arr not in fleet_written]
            if missing:
                findings.append(anchor.finding(
                    self.id, None,
                    f"{key} maps to fleet array(s) {', '.join(missing)} "
                    f"but no fleet module writes them",
                ))
        for key in sorted(self.field_map):
            if key not in mutations:
                findings.append(anchor.finding(
                    self.id, None,
                    f"stale FIELD_MAP entry {key}: no scalar kernel "
                    f"mutation matches it",
                ))
        for key in sorted(self.not_ported):
            if key not in mutations:
                findings.append(anchor.finding(
                    self.id, None,
                    f"stale NOT_PORTED entry {key}: no scalar kernel "
                    f"mutation matches it",
                ))
        return findings
