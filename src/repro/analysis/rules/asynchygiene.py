"""Rule: no blocking calls inside ``async def`` bodies.

The serve daemon (:mod:`repro.serve`) runs simulations on an asyncio
event loop; one blocking call inside a coroutine stalls every connected
SSE stream.  This rule flags, inside ``async def`` functions anywhere in
the tree (the event loop does not care which package stalls it):

* ``time.sleep`` (use ``asyncio.sleep``),
* synchronous subprocess spawns (``subprocess.run`` & friends,
  ``os.system``),
* synchronous sockets and HTTP (``socket.socket``,
  ``socket.create_connection``, ``urllib.request.urlopen``),
* synchronous file IO: builtin ``open()`` and ``Path`` read/write
  helpers (``read_text``, ``write_bytes``, ...).

Code inside a *nested* synchronous ``def`` is exempt — that function may
legitimately be shipped to a thread executor.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import Finding, ImportMap, ModuleSource, Rule
from repro.analysis.registry import register_rule

#: Resolved dotted call targets that block the event loop.
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)` instead",
    "subprocess.run": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.call": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.check_call": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.check_output": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.Popen": "use `await asyncio.create_subprocess_exec(...)`",
    "os.system": "use `await asyncio.create_subprocess_shell(...)`",
    "socket.socket": "use asyncio streams (`asyncio.open_connection`)",
    "socket.create_connection": "use `asyncio.open_connection(...)`",
    "urllib.request.urlopen": "run it in a thread executor",
}

#: Method names on any receiver that imply synchronous file IO.
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


@register_rule
class AsyncHygieneRule(Rule):
    id: ClassVar[str] = "async-hygiene"
    description: ClassVar[str] = (
        "no blocking calls (time.sleep, sync IO, subprocess) inside "
        "async def bodies"
    )

    def check_module(self, module: ModuleSource) -> list[Finding]:
        imports = ImportMap(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self._check_async_body(module, imports, node, findings)
        return findings

    def _check_async_body(
        self,
        module: ModuleSource,
        imports: ImportMap,
        func: ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        where = f"async def {func.name}"
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            # A nested sync def is an executor candidate; a nested async
            # def is visited by the outer walk in check_module.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                finding = self._check_call(module, imports, node, where)
                if finding is not None:
                    findings.append(finding)
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(
        self,
        module: ModuleSource,
        imports: ImportMap,
        node: ast.Call,
        where: str,
    ) -> Finding | None:
        func = node.func
        target = imports.resolve_call(func)
        if target is not None and target in _BLOCKING_CALLS:
            return module.finding(
                self.id, node,
                f"blocking call {target}() in {where}; "
                f"{_BLOCKING_CALLS[target]}",
            )
        if isinstance(func, ast.Name) and func.id == "open":
            return module.finding(
                self.id, node,
                f"synchronous open() in {where}; read the file in a thread "
                f"executor or before entering the coroutine",
            )
        if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_METHODS:
            return module.finding(
                self.id, node,
                f"synchronous file IO .{func.attr}() in {where}; move it to "
                f"a thread executor",
            )
        return None
