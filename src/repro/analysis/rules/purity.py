"""Rule: engine observers may read the plant but never mutate it.

Observability callbacks registered with ``engine.observe(...)`` run
inside the tick loop; a write from one of them changes simulated physics
depending on which observers happen to be attached — the exact bug class
golden traces exist to catch.  Observers may freely mutate *their own*
state (``self.rows.append(...)``) but must treat engine, plant, and
system objects as read-only.

Detection is structural: inside the observer-scoped packages, a class is
considered an observer when it registers itself (``*.observe(self, ...)``
anywhere in its methods, typically ``attach``) or when it defines the
observer protocol ``__call__(self, clock)``.  Its tick-path methods —
``__call__`` plus every method transitively reached through
``self.<name>(...)`` calls — are then checked for:

* attribute assignment rooted at anything other than ``self``,
* ``setattr``/``delattr`` on a non-self target,
* calls whose method name is mutator-shaped (``set_*``, ``apply_*``,
  ``inject*``, ``step``, ``record``, ...) on a non-self receiver.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.analysis.core import Finding, ModuleSource, Rule, attribute_root
from repro.analysis.registry import register_rule

#: Packages whose classes participate in the engine observer protocol.
OBSERVER_PACKAGES: tuple[str, ...] = (
    "repro.obs",
    "repro.validate",
    "repro.sim.trace",
)

#: Method-name shapes that imply mutation of the receiver.
_MUTATOR_PREFIXES = (
    "set_", "apply_", "add_", "remove_", "inject", "write_",
    "reset", "clear", "record_",
)
_MUTATOR_EXACT = frozenset(
    {
        "step", "update", "append", "extend", "insert", "pop", "push",
        "emit", "observe", "shed", "transition", "record",
    }
)


def _is_mutator_name(name: str) -> bool:
    return name in _MUTATOR_EXACT or any(
        name.startswith(prefix) for prefix in _MUTATOR_PREFIXES
    )


def _rooted_at_self(node: ast.AST) -> bool:
    root = attribute_root(node)
    return isinstance(root, ast.Name) and root.id == "self"


class _ClassInfo:
    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[item.name] = item

    def is_observer(self) -> bool:
        call = self.methods.get("__call__")
        if call is not None:
            params = call.args.args
            if len(params) >= 2 and params[1].arg == "clock":
                return True
        for method in self.methods.values():
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "observe"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "self"
                ):
                    return True
        return False

    def tick_methods(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        """``__call__`` plus everything reachable via ``self.<m>()``."""
        if "__call__" not in self.methods:
            return []
        seen: set[str] = set()
        queue = ["__call__"]
        ordered: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        while queue:
            name = queue.pop(0)
            if name in seen or name not in self.methods:
                continue
            seen.add(name)
            method = self.methods[name]
            ordered.append(method)
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    queue.append(node.func.attr)
        return ordered


@register_rule
class ObserverPurityRule(Rule):
    id: ClassVar[str] = "observer-purity"
    description: ClassVar[str] = (
        "engine observers read engine/plant state but never mutate it"
    )

    def __init__(self, packages: tuple[str, ...] = OBSERVER_PACKAGES) -> None:
        self.packages = packages

    def check_module(self, module: ModuleSource) -> list[Finding]:
        if not module.in_package(*self.packages):
            return []
        findings: list[Finding] = []
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(node)
            if not info.is_observer():
                continue
            for method in info.tick_methods():
                findings.extend(self._check_method(module, node.name, method))
        return findings

    def _check_method(
        self,
        module: ModuleSource,
        class_name: str,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        findings: list[Finding] = []
        where = f"observer {class_name}.{method.name}"
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    for leaf in self._assignment_leaves(target):
                        if isinstance(leaf, (ast.Attribute, ast.Subscript)) and not _rooted_at_self(leaf):
                            findings.append(module.finding(
                                self.id, node,
                                f"{where} assigns to external state "
                                f"{ast.unparse(leaf)}; observers must not "
                                f"mutate the plant",
                            ))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in ("setattr", "delattr"):
                    if node.args and not (
                        isinstance(node.args[0], ast.Name)
                        and node.args[0].id == "self"
                    ):
                        findings.append(module.finding(
                            self.id, node,
                            f"{where} calls {func.id}() on a non-self object",
                        ))
                elif isinstance(func, ast.Attribute) and _is_mutator_name(func.attr):
                    if not _rooted_at_self(func.value):
                        findings.append(module.finding(
                            self.id, node,
                            f"{where} calls mutator "
                            f"{ast.unparse(func)}() on external state",
                        ))
        return findings

    @staticmethod
    def _assignment_leaves(target: ast.AST) -> list[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            leaves: list[ast.AST] = []
            for element in target.elts:
                leaves.extend(ObserverPurityRule._assignment_leaves(element))
            return leaves
        if isinstance(target, ast.Starred):
            return ObserverPurityRule._assignment_leaves(target.value)
        return [target]
