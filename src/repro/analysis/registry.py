"""Name-based rule registry, mirroring :mod:`repro.policy.registry`.

Built-in rules register themselves at import time via the
:func:`register_rule` decorator; third-party extensions use the same
decorator to add project-specific rules (see ``docs/analysis.md`` for a
worked example).  Re-registering a taken id raises, so a typo cannot
silently shadow a built-in rule.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.core import Rule

_RULES: dict[str, Callable[[], Rule]] = {}


def _ensure_builtin() -> None:
    """Import the built-in rule modules (idempotent, import-cycle safe)."""
    import repro.analysis.rules  # noqa: F401  (import registers the rules)


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Register a rule class under its ``id`` attribute (decorator-friendly)."""
    name = cls.id
    if not name:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if name in _RULES:
        raise ValueError(f"rule id {name!r} already registered")
    _RULES[name] = cls
    return cls


def rule_names() -> list[str]:
    _ensure_builtin()
    return sorted(_RULES)


def make_rule(name: str) -> Rule:
    _ensure_builtin()
    try:
        return _RULES[name]()
    except KeyError:
        raise ValueError(
            f"unknown rule {name!r}; known: {rule_names()}"
        ) from None


def make_rules(names: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the named rules (all registered rules by default)."""
    if names is None:
        return [make_rule(name) for name in rule_names()]
    return [make_rule(name) for name in names]
