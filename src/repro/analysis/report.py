"""Reporters for lint results: human text and machine JSON.

The JSON document is a stable, versioned schema (pinned by
``tests/analysis/test_report.py``) so CI can render findings into job
summaries and external tooling can diff runs::

    {"version": 1, "root": "...", "rules": [...],
     "summary": {"files": N, "findings": N, "suppressed": N,
                 "baselined": N},
     "findings": [{"rule", "path", "line", "col", "message",
                   "fingerprint"}, ...]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.core import Finding

REPORT_VERSION = 1


@dataclass
class LintResult:
    """Outcome of one lint run."""

    root: str
    rules: list[str]
    findings: list[Finding]
    files: int
    suppressed: int = 0
    baselined: int = 0
    #: Allow comments honoured this run, for the text report's footer.
    suppressions_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)


def render_text(result: LintResult) -> str:
    """Grouped ``path:line:col: [rule] message`` listing plus a summary."""
    lines: list[str] = []
    for finding in result.sorted_findings():
        lines.append(finding.render())
    if lines:
        lines.append("")
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    summary = (
        f"{count} {noun} across {result.files} module(s); "
        f"{len(result.rules)} rule(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed by allows")
    if result.baselined:
        extras.append(f"{result.baselined} matched baseline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": REPORT_VERSION,
        "root": result.root,
        "rules": list(result.rules),
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        },
        "findings": [finding.as_dict() for finding in result.sorted_findings()],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
