"""Domain-aware static analysis for the reproduction's own sources.

``repro.analysis`` lints the simulator with rules that encode *this
project's* invariants — determinism of the tick kernel, unit-suffix
discipline, observer purity, scalar↔fleet kernel parity, and async
hygiene in the serve layer — none of which a generic linter can check.
Run it via ``repro lint``; see ``docs/analysis.md`` for the rule
catalogue and the suppression/baseline workflow.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    filter_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Allow,
    Finding,
    ImportMap,
    ModuleSource,
    Project,
    Rule,
    parse_allows,
)
from repro.analysis.registry import (
    make_rule,
    make_rules,
    register_rule,
    rule_names,
)
from repro.analysis.report import LintResult, render_json, render_text
from repro.analysis.runner import build_project, default_root, run_lint

__all__ = [
    "Allow",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "ImportMap",
    "LintResult",
    "ModuleSource",
    "Project",
    "Rule",
    "build_project",
    "default_root",
    "filter_findings",
    "load_baseline",
    "make_rule",
    "make_rules",
    "parse_allows",
    "register_rule",
    "render_json",
    "render_text",
    "rule_names",
    "run_lint",
    "write_baseline",
]
