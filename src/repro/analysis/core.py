"""Shared model for the domain-aware static analysis suite.

The suite parses the reproduction's own sources into ASTs and runs a set
of registered :class:`Rule` objects over them.  Everything downstream of
this module — rules, baseline, reporters, the ``repro lint`` CLI — works
in terms of three small types:

* :class:`ModuleSource` — one parsed source file (path, dotted module
  name, text, lazily-built AST, and its suppression comments);
* :class:`Project` — the set of modules under analysis, for rules that
  need a cross-module view (e.g. scalar↔fleet kernel parity);
* :class:`Finding` — one diagnostic, anchored to ``path:line:col`` with
  a stable fingerprint for the committed baseline.

Suppressions follow the ``# repro: allow[rule-id] reason`` convention:
an *inline* allow suppresses findings on its own line, a *standalone*
allow (a comment-only line) suppresses findings on the next line.  The
reason is mandatory — an allow without one never suppresses anything and
is itself reported (rule id ``suppression``), as are allows that no
longer match a finding, so stale exemptions cannot linger unreviewed.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

#: Rule id reserved for diagnostics about the suppression comments
#: themselves (missing reason, unknown rule id, unused allow).
SUPPRESSION_RULE = "suppression"

#: Matches ``repro: allow`` comments: the bracket list names the rule
#: ids being waived; everything after the bracket is the reason.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Line/column are deliberately excluded so unrelated edits above a
        baselined finding do not resurrect it; the (rule, path, message)
        triple identifies the finding, with duplicates handled
        count-aware by the baseline filter.
        """
        blob = f"{self.rule}|{self.path}|{self.message}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class Allow:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: Whether the comment sits on a line of its own (then it covers the
    #: next line) or trails code (then it covers its own line).
    standalone: bool
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def parse_allows(text: str) -> dict[int, Allow]:
    """Extract allow comments, keyed by 1-based source line.

    Real tokenization (not a line regex) so allow syntax quoted inside a
    docstring or string literal is never mistaken for a suppression.
    """
    allows: dict[int, Allow] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return allows
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        allows[lineno] = Allow(
            line=lineno,
            rules=rules,
            reason=match.group("reason").strip(),
            standalone=token.line.lstrip().startswith("#"),
        )
    return allows


class ModuleSource:
    """One source file under analysis.

    The AST and the allow table are built lazily: most rules scope to a
    package subset, so the common case touches only a module's name.
    """

    def __init__(self, path: Path, module: str, text: str, display_path: str | None = None) -> None:
        self.path = Path(path)
        self.module = module
        self.text = text
        #: Path string used in findings (repo-relative where possible).
        self.display_path = display_path if display_path is not None else self.path.as_posix()
        self._tree: ast.Module | None = None
        self._allows: dict[int, Allow] | None = None

    @classmethod
    def from_path(cls, path: Path, module: str, display_path: str | None = None) -> "ModuleSource":
        return cls(path, module, Path(path).read_text(encoding="utf-8"), display_path)

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    @property
    def allows(self) -> dict[int, Allow]:
        if self._allows is None:
            self._allows = parse_allows(self.text)
        return self._allows

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives in (or is) one of ``packages``."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def finding(self, rule: str, node: ast.AST | None, message: str) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(rule=rule, path=self.display_path, line=line,
                       col=col + 1, message=message)


class Project:
    """All modules under analysis, addressable by dotted name."""

    def __init__(self, modules: list[ModuleSource]) -> None:
        self.modules = list(modules)
        self._by_name = {mod.module: mod for mod in self.modules}

    def get(self, module: str) -> ModuleSource | None:
        return self._by_name.get(module)

    def members(self, *packages: str) -> list[ModuleSource]:
        return [mod for mod in self.modules if mod.in_package(*packages)]

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


class Rule:
    """Base class for analysis rules.

    Subclasses set ``id``/``description`` and implement either (or both)
    granularities: :meth:`check_module` runs once per source file,
    :meth:`check_project` once per tree (for cross-module rules).
    Registration mirrors :mod:`repro.policy.registry` — decorate with
    :func:`repro.analysis.registry.register_rule`.
    """

    id: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def check_module(self, module: ModuleSource) -> list[Finding]:
        return []

    def check_project(self, project: Project) -> list[Finding]:
        return []


# ----------------------------------------------------------------------
# Import resolution shared by rules that match dotted call chains
# ----------------------------------------------------------------------
class ImportMap:
    """Resolve local names to the dotted module paths they import.

    Built once per module from its ``import``/``from`` statements, then
    used to expand a call chain such as ``np.random.rand`` into
    ``numpy.random.rand`` regardless of aliasing.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> dotted module path ("np" -> "numpy").
        self.modules: dict[str, str] = {}
        #: local name -> (module, attr) for ``from module import attr``.
        self.names: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = (node.module, alias.name)

    def resolve_call(self, func: ast.AST) -> str | None:
        """Dotted path of a call target, or None if it cannot be traced.

        ``np.random.rand`` -> ``numpy.random.rand``;
        ``randint`` (after ``from random import randint``) ->
        ``random.randint``; unknown roots return None.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        root = node.id
        if root in self.modules:
            return ".".join([self.modules[root], *parts])
        if root in self.names:
            module, attr = self.names[root]
            return ".".join([module, attr, *parts])
        return None


def attribute_root(node: ast.AST) -> ast.AST:
    """Innermost value of an attribute/subscript chain (often a Name)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def dotted_parts(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None when the chain isn't Names."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts
