"""Lint driver: walk the source tree, run rules, apply suppressions.

The runner is the composition root of the analysis suite: it builds a
:class:`~repro.analysis.core.Project` from the installed ``repro``
package (or any directory handed to it), instantiates the requested
rules from the registry, folds inline ``# repro: allow[...]``
suppressions and the optional committed baseline into the raw findings,
and returns a :class:`~repro.analysis.report.LintResult` for the
reporters.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline, filter_findings, load_baseline
from repro.analysis.core import (
    SUPPRESSION_RULE,
    Finding,
    ModuleSource,
    Project,
    Rule,
)
from repro.analysis.registry import make_rules, rule_names
from repro.analysis.report import LintResult


def default_root() -> Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return Path(repro.__file__).parent


def iter_sources(root: Path) -> list[ModuleSource]:
    """Load every ``.py`` file under ``root`` as a ModuleSource.

    Dotted module names are derived from the path relative to ``root``'s
    parent, so a checkout's ``src/repro`` scan yields ``repro.sim.engine``
    etc.  Display paths are likewise parent-relative, keeping baselines
    stable across checkout locations.
    """
    root = Path(root).resolve()
    base = root.parent
    sources: list[ModuleSource] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relative = path.relative_to(base)
        parts = list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        module = ".".join(parts)
        display = relative.as_posix()
        sources.append(ModuleSource.from_path(path, module, display))
    return sources


def build_project(root: Path | None = None) -> Project:
    return Project(iter_sources(root if root is not None else default_root()))


def lint_project(
    project: Project,
    rules: Sequence[Rule],
    all_rules_selected: bool = True,
) -> tuple[list[Finding], int]:
    """Run ``rules`` over ``project``; returns (findings, suppressed).

    Suppression resolution: a finding is dropped when an allow comment
    covering its rule sits on the finding's line (inline) or on the line
    directly above (standalone comment).  Afterwards, malformed and
    unused allows are reported under the ``suppression`` rule — unused
    ones only when the full rule set ran, since a partial ``--rule`` run
    cannot tell whether another rule still needs the allow.
    """
    raw: list[Finding] = []
    for rule in rules:
        for module in project:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))

    by_path: dict[str, ModuleSource] = {
        module.display_path: module for module in project
    }
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        module = by_path.get(finding.path)
        allow = None
        if module is not None:
            candidate = module.allows.get(finding.line)
            if candidate is not None and candidate.covers(finding.rule):
                allow = candidate
            else:
                above = module.allows.get(finding.line - 1)
                if above is not None and above.standalone and above.covers(finding.rule):
                    allow = above
        if allow is not None and allow.reason:
            allow.used = True
            suppressed += 1
        else:
            kept.append(finding)

    known = set(rule_names()) | {"*", SUPPRESSION_RULE}
    ran = {rule.id for rule in rules}
    for module in project:
        for allow in module.allows.values():
            anchor = Finding(
                rule=SUPPRESSION_RULE, path=module.display_path,
                line=allow.line, col=1, message="",
            )
            if not allow.reason:
                kept.append(anchor.__class__(
                    rule=SUPPRESSION_RULE, path=module.display_path,
                    line=allow.line, col=1,
                    message=(
                        f"allow[{','.join(allow.rules)}] has no reason; "
                        f"suppressions must justify themselves"
                    ),
                ))
                continue
            unknown = [r for r in allow.rules if r not in known]
            if unknown:
                kept.append(anchor.__class__(
                    rule=SUPPRESSION_RULE, path=module.display_path,
                    line=allow.line, col=1,
                    message=f"allow names unknown rule id(s): {', '.join(unknown)}",
                ))
                continue
            covered_ran = ("*" in allow.rules) or any(r in ran for r in allow.rules)
            if all_rules_selected and covered_ran and not allow.used:
                kept.append(anchor.__class__(
                    rule=SUPPRESSION_RULE, path=module.display_path,
                    line=allow.line, col=1,
                    message=(
                        f"unused allow[{','.join(allow.rules)}]; the finding it "
                        f"waived is gone — delete the comment"
                    ),
                ))
    return kept, suppressed


def run_lint(
    root: Path | None = None,
    rule_ids: Sequence[str] | None = None,
    baseline_path: Path | str | None = None,
) -> LintResult:
    """End-to-end lint run over a source tree.

    ``baseline_path`` (when given) filters findings against the committed
    baseline; pass None to report everything.
    """
    scan_root = Path(root).resolve() if root is not None else default_root()
    project = build_project(scan_root)
    rules = make_rules(rule_ids)
    findings, suppressed = lint_project(
        project, rules, all_rules_selected=rule_ids is None
    )
    baselined = 0
    if baseline_path is not None:
        baseline: Baseline = load_baseline(baseline_path)
        findings, baselined = filter_findings(findings, baseline)
    return LintResult(
        root=str(scan_root),
        rules=[rule.id for rule in rules],
        findings=sorted(findings, key=Finding.sort_key),
        files=len(project),
        suppressed=suppressed,
        baselined=baselined,
    )
