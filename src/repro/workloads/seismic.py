"""Seismic data analysis: intermittent batch jobs.

The oil-exploration case study: a geographical survey of a 225 km² field
produces 114 GB of micro-seismic test data per acquisition, twice a day.
Jobs are long-running Madagascar-style velocity analyses — adding VMs
mid-job is not possible, so the temporal manager actuates DVFS duty
cycles instead of VM scaling (paper §2.3 and Table 2).

The service rate is calibrated so four VMs sustain ~16.5 GB/hour, the
paper's measured throughput for the well-matched configuration.
"""

from __future__ import annotations

from repro.workloads.base import Job, Workload

#: Table 2 calibration: 16.5 GB/hour on 4 VMs at full speed.
_GB_PER_HOUR_AT_4VM = 16.5


class SeismicAnalysis(Workload):
    """Twice-daily 114 GB batch jobs."""

    gb_per_compute_second = _GB_PER_HOUR_AT_4VM / 4.0 / 3600.0
    #: The cluster's full configuration; power-aware node adaptation (which
    #: Table 2 shows is what actually maximises effective throughput) is the
    #: controller's job, not the workload's.
    preferred_vms = 8
    cpu_share = 0.2
    actuation = "duty"
    checkpoint_interval_s = 600.0

    def __init__(
        self,
        name: str = "seismic",
        job_size_gb: float = 114.0,
        arrivals_per_day: tuple[float, ...] = (8.0, 16.0),
        start_hour: float = 7.0,
        initial_backlog_jobs: int = 1,
        deferral_window_s: float = 24 * 3600.0,
    ) -> None:
        super().__init__(name)
        if job_size_gb <= 0:
            raise ValueError("job_size_gb must be positive")
        self.job_size_gb = job_size_gb
        self.arrivals_per_day = tuple(sorted(arrivals_per_day))
        self.start_hour = start_hour
        if deferral_window_s <= 0:
            raise ValueError("deferral_window_s must be positive")
        self.deferral_window_s = deferral_window_s
        self._job_counter = 0
        for _ in range(initial_backlog_jobs):
            self._push_job(0.0)

    def _push_job(self, t: float) -> None:
        self._job_counter += 1
        self.queue.push(Job(
            f"{self.name}-{self._job_counter}", self.job_size_gb, t,
            deadline_t=t + self.deferral_window_s,
        ))

    def _hour_of_day(self, t: float) -> float:
        return (self.start_hour + t / 3600.0) % 24.0

    def _generate(self, t: float, dt: float) -> None:
        before = self._hour_of_day(t)
        after = before + dt / 3600.0  # may exceed 24 within one tick
        for arrival_hour in self.arrivals_per_day:
            hit = before <= arrival_hour < after or (
                after >= 24.0 and arrival_hour < after - 24.0
            )
            if hit:
                self._push_job(t)
