"""Workload base classes and job-queue plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Job:
    """A unit of data-processing work.

    Attributes
    ----------
    job_id:
        Unique identifier.
    size_gb:
        Total data volume to process.
    arrival_t:
        Simulation time the data became available.
    done_gb:
        Progress so far.
    checkpoint_gb:
        Progress as of the last durable checkpoint; a crash rolls
        ``done_gb`` back to this value.
    completion_t:
        Set when the job finishes.
    """

    job_id: str
    size_gb: float
    arrival_t: float
    done_gb: float = 0.0
    checkpoint_gb: float = 0.0
    completion_t: float | None = None
    #: Absolute time by which the job should finish (the paper: ~85 % of
    #: big-data tasks can be deferred by a day — but not forever).
    deadline_t: float | None = None

    def __post_init__(self) -> None:
        if self.size_gb <= 0:
            raise ValueError("size_gb must be positive")
        if self.arrival_t < 0:
            raise ValueError("arrival_t must be non-negative")

    @property
    def finished(self) -> bool:
        return self.completion_t is not None

    @property
    def met_deadline(self) -> bool | None:
        """True/False once finished (None while pending or deadline-free)."""
        if self.deadline_t is None or self.completion_t is None:
            return None
        return self.completion_t <= self.deadline_t

    @property
    def remaining_gb(self) -> float:
        return max(0.0, self.size_gb - self.done_gb)

    def advance(self, gb: float, t: float) -> float:
        """Apply up to ``gb`` of progress; returns GB actually consumed."""
        if gb < 0:
            raise ValueError("gb must be non-negative")
        used = min(gb, self.remaining_gb)
        self.done_gb += used
        if self.remaining_gb <= 1e-12 and not self.finished:
            self.completion_t = t
        return used

    def checkpoint(self) -> None:
        self.checkpoint_gb = self.done_gb

    def rollback(self) -> float:
        """Crash recovery: lose progress since the last checkpoint.

        Returns the GB of work lost.
        """
        lost = self.done_gb - self.checkpoint_gb
        self.done_gb = self.checkpoint_gb
        return lost


class JobQueue:
    """FIFO queue with completion bookkeeping."""

    def __init__(self) -> None:
        self.pending: list[Job] = []
        self.completed: list[Job] = []

    def push(self, job: Job) -> None:
        self.pending.append(job)

    @property
    def head(self) -> Job | None:
        return self.pending[0] if self.pending else None

    def retire_finished(self) -> None:
        while self.pending and self.pending[0].finished:
            self.completed.append(self.pending.pop(0))

    @property
    def backlog_gb(self) -> float:
        return sum(job.remaining_gb for job in self.pending)

    def __len__(self) -> int:
        return len(self.pending)


@dataclass
class WorkloadStats:
    """Aggregate metrics every workload maintains."""

    processed_gb: float = 0.0
    lost_gb: float = 0.0
    #: Raw data overwritten before it could be processed (storage full).
    dropped_gb: float = 0.0
    crash_count: int = 0
    delays_s: list[float] = field(default_factory=list)
    deadline_total: int = 0
    deadline_misses: int = 0

    @property
    def deadline_miss_rate(self) -> float:
        if self.deadline_total == 0:
            return 0.0
        return self.deadline_misses / self.deadline_total

    def throughput_gb_per_hour(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            raise ValueError("elapsed_s must be positive")
        return self.processed_gb / (elapsed_s / 3600.0)

    @property
    def mean_delay_minutes(self) -> float:
        if not self.delays_s:
            return 0.0
        return sum(self.delays_s) / len(self.delays_s) / 60.0


class Workload:
    """Base workload: consumes rack compute-seconds, tracks statistics.

    Subclasses implement :meth:`_generate` (data arrivals) and define
    ``gb_per_compute_second`` (service rate) and ``preferred_vms``.
    """

    #: Data processed per VM-compute-second at full speed.
    gb_per_compute_second: float = 0.001
    #: VM count the workload would use given unconstrained power.
    preferred_vms: int = 8
    #: Host utilisation each of this workload's VMs contributes.
    cpu_share: float = 0.2
    #: How the temporal manager caps this workload's power: "duty" (DVFS
    #: duty cycling — batch jobs whose VM count cannot change mid-job) or
    #: "vms" (VM scaling — streams splittable into small jobs).
    actuation: str = "vms"
    #: Durable checkpoint cadence for in-flight jobs.
    checkpoint_interval_s: float = 600.0

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue = JobQueue()
        self.stats = WorkloadStats()
        self._since_checkpoint = 0.0
        #: Optional on-site raw-data buffer (see repro.cluster.storage).
        self.storage = None

    def attach_storage(self, storage) -> None:
        """Buffer raw arrivals on ``storage``; overflow drops oldest data."""
        self.storage = storage

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _generate(self, t: float, dt: float) -> None:
        """Push newly arrived data onto the queue.  Override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def step(self, t: float, dt: float, compute_seconds: float) -> float:
        """Advance arrivals and consume ``compute_seconds``; returns GB done."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        backlog_before = self.queue.backlog_gb
        self._generate(t, dt)
        if self.storage is not None:
            arrived = max(0.0, self.queue.backlog_gb - backlog_before)
            overflow = self.storage.ingest(arrived, t)
            if overflow > 0.0:
                self._drop_oldest(overflow)

        budget_gb = compute_seconds * self.gb_per_compute_second
        done = 0.0
        while budget_gb > 1e-12:
            job = self.queue.head
            if job is None:
                break
            used = job.advance(budget_gb, t + dt)
            budget_gb -= used
            done += used
            if job.finished:
                self.stats.delays_s.append(self._job_delay(job))
                if job.deadline_t is not None:
                    self.stats.deadline_total += 1
                    if not job.met_deadline:
                        self.stats.deadline_misses += 1
                self.queue.retire_finished()
            else:
                break
        self.stats.processed_gb += done
        if self.storage is not None and done > 0.0:
            self.storage.drain(done)

        # Periodic durable checkpoints of in-flight progress.
        self._since_checkpoint += dt
        if self._since_checkpoint >= self.checkpoint_interval_s:
            self._since_checkpoint = 0.0
            self.checkpoint_all()
        return done

    def _job_delay(self, job: Job) -> float:
        """Delay metric for a finished job: completion lag beyond ideal.

        Ideal service time assumes the workload's preferred VM allocation
        at full speed.
        """
        assert job.completion_t is not None
        ideal = job.size_gb / (
            self.gb_per_compute_second * max(self.preferred_vms, 1)
        )
        return max(0.0, (job.completion_t - job.arrival_t) - ideal)

    def _drop_oldest(self, gb: float) -> None:
        """Overwrite-oldest: unprocessed data of the oldest jobs is lost."""
        remaining = gb
        while remaining > 1e-12 and self.queue.pending:
            job = self.queue.pending[0]
            lost = min(job.remaining_gb, remaining)
            job.size_gb -= lost
            job.checkpoint_gb = min(job.checkpoint_gb, job.size_gb)
            remaining -= lost
            self.stats.dropped_gb += lost
            if job.remaining_gb <= 1e-12:
                # Nothing left of this job to process; discard it (a
                # dropped deadline job is a miss, not a completion).
                if job.deadline_t is not None:
                    self.stats.deadline_total += 1
                    self.stats.deadline_misses += 1
                self.queue.pending.pop(0)

    def checkpoint_all(self) -> None:
        """Durably checkpoint all in-flight progress (graceful stop path)."""
        for job in self.queue.pending:
            job.checkpoint()

    def on_crash(self) -> float:
        """Uncontrolled power loss: roll back to the last checkpoints."""
        lost = sum(job.rollback() for job in self.queue.pending)
        self.stats.processed_gb = max(0.0, self.stats.processed_gb - lost)
        self.stats.lost_gb += lost
        self.stats.crash_count += 1
        return lost

    @property
    def backlog_gb(self) -> float:
        return self.queue.backlog_gb

    def mean_delay_minutes(self, t_now: float) -> float:
        """Mean job delay including *censored* pending jobs.

        A job still in the queue at observation time has already accrued at
        least ``t_now - arrival - ideal_service`` of delay; ignoring it
        would reward a system for never finishing anything.
        """
        if t_now < 0:
            raise ValueError("t_now must be non-negative")
        samples = list(self.stats.delays_s)
        for job in self.queue.pending:
            ideal = job.size_gb / (
                self.gb_per_compute_second * max(self.preferred_vms, 1)
            )
            accrued = t_now - job.arrival_t - ideal
            if accrued > 0:
                samples.append(accrued)
        if not samples:
            return 0.0
        return sum(samples) / len(samples) / 60.0
