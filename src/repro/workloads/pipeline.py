"""Staged seismic processing pipeline.

The prototype ran Madagascar, whose velocity analysis is a multi-stage
pipeline; a stage is the natural checkpoint boundary (mid-stage output is
useless until the stage completes).  :class:`StagedSeismicAnalysis`
refines the plain batch model accordingly: durable checkpoints snap to
the last completed stage boundary, so an uncontrolled power loss costs
the whole in-flight stage — which is exactly why the paper's Table 2
configuration with fewer, steadier VMs beats the aggressive one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.seismic import SeismicAnalysis


@dataclass(frozen=True)
class PipelineStage:
    """One stage of the analysis pipeline.

    Attributes
    ----------
    name:
        Stage id.
    work_fraction:
        Share of the job's total data-work this stage performs.
    """

    name: str
    work_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.work_fraction <= 1.0:
            raise ValueError("work_fraction must be in (0, 1]")


#: Madagascar-style 3D reflection velocity analysis.
DEFAULT_STAGES = (
    PipelineStage("deconvolution", 0.25),
    PipelineStage("velocity-analysis", 0.35),
    PipelineStage("nmo-stack", 0.20),
    PipelineStage("migration", 0.20),
)


class StagedSeismicAnalysis(SeismicAnalysis):
    """Seismic batch jobs whose checkpoints snap to stage boundaries."""

    def __init__(self, *args, stages: tuple[PipelineStage, ...] = DEFAULT_STAGES,
                 **kwargs) -> None:
        total = sum(stage.work_fraction for stage in stages)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"stage fractions must sum to 1, got {total}")
        super().__init__(*args, **kwargs)
        self.stages = stages

    # ------------------------------------------------------------------
    # Stage geometry
    # ------------------------------------------------------------------
    def stage_boundaries_gb(self, size_gb: float) -> list[float]:
        """Cumulative GB marks at which stages complete."""
        marks, cum = [], 0.0
        for stage in self.stages:
            cum += stage.work_fraction * size_gb
            marks.append(cum)
        return marks

    def current_stage(self, done_gb: float, size_gb: float) -> PipelineStage:
        """The stage a job at ``done_gb`` of ``size_gb`` is executing."""
        if done_gb < 0 or size_gb <= 0:
            raise ValueError("need done_gb >= 0 and size_gb > 0")
        for stage, boundary in zip(self.stages, self.stage_boundaries_gb(size_gb), strict=True):
            if done_gb < boundary:
                return stage
        return self.stages[-1]

    def last_boundary_before(self, done_gb: float, size_gb: float) -> float:
        """Largest completed-stage mark at or below ``done_gb``."""
        best = 0.0
        for boundary in self.stage_boundaries_gb(size_gb):
            if boundary <= done_gb + 1e-12:
                best = boundary
        return best

    # ------------------------------------------------------------------
    # Checkpoint semantics
    # ------------------------------------------------------------------
    def checkpoint_all(self) -> None:
        """Durable state exists only at stage boundaries."""
        for job in self.queue.pending:
            job.checkpoint_gb = max(
                job.checkpoint_gb,
                self.last_boundary_before(job.done_gb, job.size_gb),
            )
