"""Micro-benchmark workloads (Table 5, Figures 17-19, Table 7).

Each benchmark is an iterated kernel: one iteration processes its input
size, and iterations repeat back-to-back ("each workload is executed
iteratively in our experiment").  Per-benchmark envelopes set the host
utilisation a VM contributes (CPU-bound x264 runs hotter than I/O-heavy
dedup) and the data rate per compute-second.

Per-profile speed factors carry Table 7's heterogeneity: the Core i7 node
is ~2x faster than the old Xeon on dedup, roughly even on x264, and
~0.66x on bayes, while drawing an order of magnitude less power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.base import Job, Workload


@dataclass(frozen=True)
class MicroBenchmark:
    """Static envelope of one benchmark kernel.

    Attributes
    ----------
    name:
        Benchmark id as used in the paper's figures.
    input_gb:
        Data volume of one iteration.
    cpu_share:
        Host utilisation contributed per VM while running.
    gb_per_compute_second:
        Service rate on the Xeon baseline.
    speed_factors:
        Per-server-profile speed multipliers (Table 7); profiles not
        listed default to their generic ``relative_speed``.
    """

    name: str
    input_gb: float
    cpu_share: float
    gb_per_compute_second: float
    speed_factors: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.input_gb <= 0:
            raise ValueError("input_gb must be positive")
        if not 0.0 < self.cpu_share <= 0.5:
            raise ValueError("cpu_share must be in (0, 0.5]")
        if self.gb_per_compute_second <= 0:
            raise ValueError("gb_per_compute_second must be positive")


def _rate(size_gb: float, seconds_on_xeon: float) -> float:
    """Service rate from one measured iteration on the Xeon node.

    The measured numbers of Table 7 are whole-node (2 VM) figures, so one
    compute-second is half a node-second.
    """
    return size_gb / (seconds_on_xeon * 2.0)


#: Table 5's benchmark suite plus the extra kernels named in Figures 17-19.
MICRO_BENCHMARKS: dict[str, MicroBenchmark] = {
    "dedup": MicroBenchmark(
        name="dedup", input_gb=0.672, cpu_share=0.19,
        gb_per_compute_second=_rate(2.6, 97.0),
        speed_factors={"core-i7": 2.02},
    ),
    "graph": MicroBenchmark(
        name="graph", input_gb=1.3, cpu_share=0.22,
        gb_per_compute_second=_rate(1.3, 210.0),
    ),
    "bayesian": MicroBenchmark(
        name="bayesian", input_gb=2.4, cpu_share=0.21,
        gb_per_compute_second=_rate(4.8, 439.0),
        speed_factors={"core-i7": 0.66},
    ),
    "wordcount": MicroBenchmark(
        name="wordcount", input_gb=1.0, cpu_share=0.18,
        gb_per_compute_second=_rate(1.0, 120.0),
    ),
    "vips": MicroBenchmark(
        name="vips", input_gb=0.044, cpu_share=0.24,
        gb_per_compute_second=_rate(0.044, 14.0),
    ),
    "x264": MicroBenchmark(
        name="x264", input_gb=0.0056, cpu_share=0.25,
        gb_per_compute_second=_rate(0.0056, 4.6),
        speed_factors={"core-i7": 0.98},
    ),
    "sort": MicroBenchmark(
        name="sort", input_gb=3.0, cpu_share=0.17,
        gb_per_compute_second=_rate(3.0, 260.0),
    ),
    "terasort": MicroBenchmark(
        name="terasort", input_gb=3.2, cpu_share=0.20,
        gb_per_compute_second=_rate(3.2, 300.0),
    ),
}

#: The six kernels on the x-axis of Figures 17-19.
FIGURE17_BENCHMARKS = ("x264", "vips", "sort", "graph", "dedup", "terasort")


class MicroWorkload(Workload):
    """Iterated micro-benchmark: always has a next iteration queued."""

    def __init__(self, benchmark: MicroBenchmark | str, profile_name: str = "xeon-dl380") -> None:
        if isinstance(benchmark, str):
            try:
                benchmark = MICRO_BENCHMARKS[benchmark]
            except KeyError:
                raise ValueError(
                    f"unknown benchmark {benchmark!r}; "
                    f"expected one of {sorted(MICRO_BENCHMARKS)}"
                ) from None
        super().__init__(f"micro.{benchmark.name}")
        self.benchmark = benchmark
        speed = benchmark.speed_factors.get(profile_name, 1.0)
        self.gb_per_compute_second = benchmark.gb_per_compute_second * speed
        self.cpu_share = benchmark.cpu_share
        self.preferred_vms = 8
        self._iteration = 0

    def _generate(self, t: float, dt: float) -> None:
        # Keep exactly one iteration in flight: back-to-back execution.
        if not self.queue.pending:
            self._iteration += 1
            self.queue.push(
                Job(
                    f"{self.name}-iter{self._iteration}",
                    self.benchmark.input_gb,
                    t,
                )
            )

    @property
    def completed_iterations(self) -> int:
        return len(self.queue.completed)
