"""Video surveillance analysis: a continuous data stream.

Twenty-four cameras at 1280x720 / 5 fps produce 0.21 GB of footage per
minute.  Footage is chunked into one-minute jobs fed to a Hadoop-style
pattern-recognition pipeline; the stream can be split across however many
VMs are active, so the temporal manager actuates *VM count* here (paper
§2.3 and Table 3).

Calibration: eight VMs exactly keep up with the arrival rate (zero delay
in Table 3), so the per-VM service rate is arrival/8.
"""

from __future__ import annotations

from repro.workloads.base import Job, Workload

#: Paper constants.
STREAM_RATE_GB_PER_MIN = 0.21
CAMERA_COUNT = 24


class VideoSurveillance(Workload):
    """Continuous 0.21 GB/min stream chopped into one-minute chunks."""

    #: Eight VMs match the arrival rate: rate/VM-second = 0.21/60/8.
    gb_per_compute_second = STREAM_RATE_GB_PER_MIN / 60.0 / 8.0
    preferred_vms = 8
    cpu_share = 0.2
    actuation = "vms"
    #: Stream chunks are tiny; checkpoint every chunk boundary.
    checkpoint_interval_s = 60.0

    def __init__(
        self,
        name: str = "video",
        rate_gb_per_min: float = STREAM_RATE_GB_PER_MIN,
        chunk_seconds: float = 60.0,
    ) -> None:
        super().__init__(name)
        if rate_gb_per_min <= 0:
            raise ValueError("rate_gb_per_min must be positive")
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        self.rate_gb_per_min = rate_gb_per_min
        self.chunk_seconds = chunk_seconds
        self._accumulated_s = 0.0
        self._chunk_counter = 0

    @property
    def chunk_gb(self) -> float:
        return self.rate_gb_per_min * self.chunk_seconds / 60.0

    def _generate(self, t: float, dt: float) -> None:
        self._accumulated_s += dt
        while self._accumulated_s >= self.chunk_seconds:
            self._accumulated_s -= self.chunk_seconds
            self._chunk_counter += 1
            self.queue.push(
                Job(f"{self.name}-chunk{self._chunk_counter}", self.chunk_gb, t)
            )

    def _job_delay(self, job: Job) -> float:
        """Chunk delay: completion lag beyond its own duration.

        A chunk of footage covering minute N is "on time" if processed by
        the end of minute N+1; anything later is user-visible delay.
        """
        assert job.completion_t is not None
        return max(0.0, job.completion_t - job.arrival_t - self.chunk_seconds)
