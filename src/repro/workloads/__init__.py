"""In-situ workload models.

Three families, matching the paper's evaluation:

* :mod:`repro.workloads.seismic` — intermittent batch jobs: 114 GB of 3D
  reflection seismic survey data per job, two jobs a day (the oil
  exploration case study).
* :mod:`repro.workloads.video` — continuous data stream: pattern
  recognition over footage from 24 cameras at 0.21 GB/min (the video
  surveillance case study).
* :mod:`repro.workloads.micro` — the PARSEC / HiBench / CloudSuite micro
  benchmarks of Table 5 and Figures 17-19 (dedup, graph, bayesian,
  wordcount, vips, x264, sort, terasort) as iterated kernels with
  per-benchmark power and throughput envelopes.

All workloads consume *compute-seconds* produced by the rack (VM-count x
DVFS duty x relative speed x wall time), so every power-management action
shows up in their throughput and latency metrics.
"""

from repro.workloads.base import Job, JobQueue, Workload
from repro.workloads.micro import MICRO_BENCHMARKS, MicroBenchmark, MicroWorkload
from repro.workloads.seismic import SeismicAnalysis
from repro.workloads.video import VideoSurveillance

__all__ = [
    "Job",
    "JobQueue",
    "MICRO_BENCHMARKS",
    "MicroBenchmark",
    "MicroWorkload",
    "SeismicAnalysis",
    "VideoSurveillance",
    "Workload",
]
