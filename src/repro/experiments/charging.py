"""Figure 4 experiments: energy-buffer properties.

(a) Sequential (one-by-one) versus batch charging of three cabinets from
a fixed, scarce solar budget — sequential cuts total charge time by
roughly half, the paper's motivation for concentrating the budget.

(b) High-load versus low-load discharge: the rate-capacity effect drives
an early voltage cut-out at high current, and the lost capacity recovers
during a rest period (the KiBaM recovery effect).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.battery.bank import BatteryBank
from repro.battery.charger import SolarCharger
from repro.battery.unit import BatteryUnit


def charging_time_hours(
    batch_size: int,
    budget_w: float,
    unit_count: int = 3,
    start_soc: float = 0.2,
    target_soc: float = 0.9,
    dt: float = 5.0,
    timeout_h: float = 80.0,
) -> float:
    """Wall-clock hours to charge all units to target at a given batch size."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    bank = BatteryBank.build(count=unit_count, soc=start_soc)
    charger = SolarCharger()
    t = 0.0
    while any(u.soc < target_soc for u in bank) and t < timeout_h * 3600.0:
        pending = [u for u in bank if u.soc < target_soc]
        targets = pending[:batch_size]
        charger.step(targets, budget_w, dt)
        for unit in bank:
            if unit not in targets:
                unit.idle(dt)
        t += dt
    return t / 3600.0


@dataclass
class Fig4aResult:
    """Sequential vs batch charge times across budgets."""

    budgets_w: list[float]
    sequential_h: list[float]
    batch_h: list[float]

    def reduction_at(self, budget_w: float) -> float:
        """Fractional time reduction of sequential vs batch at a budget."""
        i = self.budgets_w.index(budget_w)
        return 1.0 - self.sequential_h[i] / self.batch_h[i]


def run_fig4a_charging(
    budgets_w: tuple[float, ...] = (150.0, 250.0, 800.0),
) -> Fig4aResult:
    """Figure 4(a): individual vs batch charging under several budgets.

    At the paper's scarce-budget operating point, sequential charging is
    ~50 % faster; with an abundant budget, batch charging wins — exactly
    why Figure 10 sizes the batch as N = P_G / P_PC.
    """
    result = Fig4aResult(list(budgets_w), [], [])
    for budget in budgets_w:
        result.sequential_h.append(charging_time_hours(1, budget))
        result.batch_h.append(charging_time_hours(3, budget))
    return result


@dataclass
class DischargeTrace:
    """Voltage/state trace of one constant-current discharge."""

    current_a: float
    time_s: list[float] = field(default_factory=list)
    voltage: list[float] = field(default_factory=list)
    soc: list[float] = field(default_factory=list)
    available_head: list[float] = field(default_factory=list)
    cutout_t: float | None = None
    soc_at_cutout: float | None = None
    recovered_voltage: float | None = None


def run_fig4b_discharge(
    high_a: float = 18.0,
    low_a: float = 8.0,
    rest_minutes: float = 30.0,
    dt: float = 5.0,
) -> dict[str, DischargeTrace]:
    """Figure 4(b): high vs low load discharge, then capacity recovery."""
    traces: dict[str, DischargeTrace] = {}
    for label, amps in (("high", high_a), ("low", low_a)):
        unit = BatteryUnit(f"fig4b-{label}", soc=1.0)
        trace = DischargeTrace(current_a=amps)
        t = 0.0
        while t < 8 * 3600.0:
            delivered = unit.apply_discharge(amps, dt)
            t += dt
            if int(t) % 60 == 0:
                trace.time_s.append(t)
                trace.voltage.append(unit.terminal_voltage)
                trace.soc.append(unit.soc)
                trace.available_head.append(unit.kibam.available_head)
            if delivered < amps * 0.99:
                trace.cutout_t = t
                trace.soc_at_cutout = unit.soc
                break
        # Rest: the recovery effect lifts the open-circuit voltage back up.
        for _ in range(int(rest_minutes * 60.0 / dt)):
            unit.idle(dt)
        trace.recovered_voltage = unit.open_circuit_voltage
        traces[label] = trace
    return traces
