"""Micro-benchmark sweep (Figures 17, 18 and 19).

For each of the six kernels on the figures' x-axes and the two Figure 15
solar traces, run InSURE against the unoptimised baseline and report the
improvement in service availability (Fig. 17), e-Buffer energy
availability (Fig. 18) and expected e-Buffer service life (Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import build_system
from repro.experiments.runner import run_cells
from repro.sim.cache import (
    cache_key,
    default_cache,
    summary_from_payload,
    summary_to_payload,
)
from repro.solar.traces import HIGH_TRACE_MEAN_W, LOW_TRACE_MEAN_W, make_day_trace
from repro.telemetry.analyzer import improvement
from repro.telemetry.metrics import RunSummary
from repro.workloads.micro import FIGURE17_BENCHMARKS, MicroWorkload


def _solar_point(solar_level: str) -> tuple[float, str]:
    if solar_level == "high":
        return HIGH_TRACE_MEAN_W, "sunny"
    if solar_level == "low":
        return LOW_TRACE_MEAN_W, "cloudy"
    raise ValueError(f"solar_level must be 'high' or 'low', got {solar_level!r}")


def run_micro_cell(
    benchmark: str,
    solar_level: str,
    controller: str,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    use_cache: bool = True,
) -> RunSummary:
    """One (benchmark, solar, controller) run, memoised (picklable)."""
    mean_w, profile = _solar_point(solar_level)
    cache = default_cache() if use_cache else None
    key = None
    if cache is not None and cache.enabled:
        key = cache_key(
            "micro_sweep.cell",
            benchmark=benchmark,
            solar_level=solar_level,
            controller=controller,
            seed=seed,
            initial_soc=initial_soc,
            dt=dt,
        )
        cached = cache.get(key)
        if cached is not None:
            return summary_from_payload(cached)

    trace = make_day_trace(profile, dt_seconds=dt, seed=seed,
                           target_mean_w=mean_w)
    system = build_system(
        trace,
        MicroWorkload(benchmark),
        controller=controller,
        seed=seed,
        initial_soc=initial_soc,
        dt=dt,
    )
    summary = system.run()
    if cache is not None and key is not None:
        cache.put(key, summary_to_payload(summary))
    return summary


@dataclass
class MicroComparison:
    """InSURE vs baseline for one benchmark at one solar level."""

    benchmark: str
    solar_level: str
    insure: RunSummary
    baseline: RunSummary

    @property
    def availability_improvement(self) -> float:
        """Figure 17's bar."""
        return improvement(self.insure.uptime_fraction,
                           self.baseline.uptime_fraction)

    @property
    def energy_availability_improvement(self) -> float:
        """Figure 18's bar."""
        return improvement(self.insure.energy_availability_wh,
                           self.baseline.energy_availability_wh)

    @property
    def service_life_improvement(self) -> float:
        """Figure 19's bar."""
        return improvement(self.insure.projected_life_days,
                           self.baseline.projected_life_days)


def run_micro_comparison(
    benchmark: str,
    solar_level: str,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    use_cache: bool = True,
) -> MicroComparison:
    """One benchmark x solar-level cell of Figures 17-19."""
    _solar_point(solar_level)  # validate the level before running anything
    results: dict[str, RunSummary] = {}
    for controller in ("insure", "baseline"):
        results[controller] = run_micro_cell(
            benchmark, solar_level, controller,
            seed=seed, initial_soc=initial_soc, dt=dt, use_cache=use_cache,
        )
    return MicroComparison(
        benchmark=benchmark,
        solar_level=solar_level,
        insure=results["insure"],
        baseline=results["baseline"],
    )


def run_micro_sweep(
    benchmarks: tuple[str, ...] = FIGURE17_BENCHMARKS,
    solar_levels: tuple[str, ...] = ("high", "low"),
    seed: int = 1,
    max_workers: int | None = None,
    use_cache: bool = True,
) -> list[MicroComparison]:
    """The full Figures 17-19 sweep, fanned out across worker processes."""
    pairs = [(b, lvl) for b in benchmarks for lvl in solar_levels]
    cells = [
        dict(
            benchmark=benchmark,
            solar_level=level,
            controller=controller,
            seed=seed,
            use_cache=use_cache,
        )
        for benchmark, level in pairs
        for controller in ("insure", "baseline")
    ]
    summaries = run_cells(run_micro_cell, cells, max_workers=max_workers)
    return [
        MicroComparison(
            benchmark=benchmark,
            solar_level=level,
            insure=summaries[2 * i],
            baseline=summaries[2 * i + 1],
        )
        for i, (benchmark, level) in enumerate(pairs)
    ]


def sweep_averages(comparisons: list[MicroComparison]) -> dict[str, dict[str, float]]:
    """The figures' "avg." bars, per solar level."""
    averages: dict[str, dict[str, float]] = {}
    for level in dict.fromkeys(c.solar_level for c in comparisons):
        subset = [c for c in comparisons if c.solar_level == level]
        averages[level] = {
            "availability": sum(c.availability_improvement for c in subset) / len(subset),
            "energy_availability": sum(
                c.energy_availability_improvement for c in subset
            ) / len(subset),
            "service_life": sum(c.service_life_improvement for c in subset) / len(subset),
        }
    return averages
