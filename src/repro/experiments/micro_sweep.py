"""Micro-benchmark sweep (Figures 17, 18 and 19).

For each of the six kernels on the figures' x-axes and the two Figure 15
solar traces, run InSURE against the unoptimised baseline and report the
improvement in service availability (Fig. 17), e-Buffer energy
availability (Fig. 18) and expected e-Buffer service life (Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import build_system
from repro.solar.traces import HIGH_TRACE_MEAN_W, LOW_TRACE_MEAN_W, make_day_trace
from repro.telemetry.analyzer import improvement
from repro.telemetry.metrics import RunSummary
from repro.workloads.micro import FIGURE17_BENCHMARKS, MicroWorkload


@dataclass
class MicroComparison:
    """InSURE vs baseline for one benchmark at one solar level."""

    benchmark: str
    solar_level: str
    insure: RunSummary
    baseline: RunSummary

    @property
    def availability_improvement(self) -> float:
        """Figure 17's bar."""
        return improvement(self.insure.uptime_fraction,
                           self.baseline.uptime_fraction)

    @property
    def energy_availability_improvement(self) -> float:
        """Figure 18's bar."""
        return improvement(self.insure.energy_availability_wh,
                           self.baseline.energy_availability_wh)

    @property
    def service_life_improvement(self) -> float:
        """Figure 19's bar."""
        return improvement(self.insure.projected_life_days,
                           self.baseline.projected_life_days)


def run_micro_comparison(
    benchmark: str,
    solar_level: str,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
) -> MicroComparison:
    """One benchmark x solar-level cell of Figures 17-19."""
    if solar_level == "high":
        mean_w, profile = HIGH_TRACE_MEAN_W, "sunny"
    elif solar_level == "low":
        mean_w, profile = LOW_TRACE_MEAN_W, "cloudy"
    else:
        raise ValueError(f"solar_level must be 'high' or 'low', got {solar_level!r}")

    results: dict[str, RunSummary] = {}
    for controller in ("insure", "baseline"):
        trace = make_day_trace(profile, dt_seconds=dt, seed=seed,
                               target_mean_w=mean_w)
        system = build_system(
            trace,
            MicroWorkload(benchmark),
            controller=controller,
            seed=seed,
            initial_soc=initial_soc,
            dt=dt,
        )
        results[controller] = system.run()
    return MicroComparison(
        benchmark=benchmark,
        solar_level=solar_level,
        insure=results["insure"],
        baseline=results["baseline"],
    )


def run_micro_sweep(
    benchmarks: tuple[str, ...] = FIGURE17_BENCHMARKS,
    solar_levels: tuple[str, ...] = ("high", "low"),
    seed: int = 1,
) -> list[MicroComparison]:
    """The full Figures 17-19 sweep."""
    return [
        run_micro_comparison(benchmark, level, seed=seed)
        for benchmark in benchmarks
        for level in solar_levels
    ]


def sweep_averages(comparisons: list[MicroComparison]) -> dict[str, dict[str, float]]:
    """The figures' "avg." bars, per solar level."""
    averages: dict[str, dict[str, float]] = {}
    for level in {c.solar_level for c in comparisons}:
        subset = [c for c in comparisons if c.solar_level == level]
        averages[level] = {
            "availability": sum(c.availability_improvement for c in subset) / len(subset),
            "energy_availability": sum(
                c.energy_availability_improvement for c in subset
            ) / len(subset),
            "service_life": sum(c.service_life_improvement for c in subset) / len(subset),
        }
    return averages
