"""Provisioning sensitivity sweeps.

§6.5 of the paper closes on the open question: "Over-provisioning
increases the TCO of InSURE and changes the position of the intersection
point."  This experiment quantifies it on our substrate: sweep the
e-Buffer size (and optionally the solar array scale), measure what each
increment buys in uptime/throughput, and price it with the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.system import build_system
from repro.experiments.runner import run_cells
from repro.sim.cache import (
    cache_key,
    default_cache,
    summary_from_payload,
    summary_to_payload,
)
from repro.solar.traces import DayTrace, make_day_trace
from repro.telemetry.metrics import RunSummary
from repro.workloads import VideoSurveillance

#: Annualised cost increments (USD/yr) from the Figure 22 breakdown.
BATTERY_CABINET_USD_PER_YEAR = 105.0   # one 24 V / 35 Ah cabinet
SOLAR_USD_PER_KW_YEAR = 175.0          # panels + inverter share


@dataclass(frozen=True)
class ProvisioningPoint:
    """One configuration of the sweep (seed-averaged)."""

    battery_count: int
    solar_scale: float
    processed_gb: float
    uptime_fraction: float
    summaries: tuple[RunSummary, ...]

    @property
    def extra_cost_usd_year(self) -> float:
        """Annualised cost above the paper's 3-cabinet/1.0x reference."""
        battery = (self.battery_count - 3) * BATTERY_CABINET_USD_PER_YEAR
        solar = (self.solar_scale - 1.0) * 1.6 * SOLAR_USD_PER_KW_YEAR
        return battery + solar


def _day_and_night_trace(seed: int, mean_w: float, dt: float = 5.0) -> DayTrace:
    """A sunny day followed by a dark night: the regime where stored
    energy (not solar) is the binding resource."""
    day = make_day_trace("sunny", seed=seed, dt_seconds=dt,
                         target_mean_w=mean_w)
    night = np.zeros(int(11 * 3600 / dt))
    return DayTrace(start_hour=day.start_hour, dt_seconds=dt,
                    power_w=np.concatenate([day.power_w, night]))


def run_provisioning_cell(
    battery_count: int,
    solar_scale: float,
    seed: int,
    mean_w: float = 900.0,
    use_cache: bool = True,
) -> RunSummary:
    """One (buffer size, seed) day-and-night run, memoised (picklable)."""
    cache = default_cache() if use_cache else None
    key = None
    if cache is not None and cache.enabled:
        key = cache_key(
            "provisioning.cell",
            battery_count=battery_count,
            solar_scale=solar_scale,
            seed=seed,
            mean_w=mean_w,
        )
        cached = cache.get(key)
        if cached is not None:
            return summary_from_payload(cached)

    trace = _day_and_night_trace(seed, mean_w * solar_scale)
    system = build_system(
        trace, VideoSurveillance(), controller="insure",
        battery_count=battery_count, seed=seed, initial_soc=0.55,
    )
    summary = system.run()
    if cache is not None and key is not None:
        cache.put(key, summary_to_payload(summary))
    return summary


def run_provisioning_sweep(
    battery_counts: tuple[int, ...] = (2, 3, 4, 5),
    solar_scale: float = 1.0,
    seeds: tuple[int, ...] = (12, 21, 34),
    mean_w: float = 900.0,
    max_workers: int | None = None,
    use_cache: bool = True,
    backend: str | None = None,
) -> list[ProvisioningPoint]:
    """Sweep the e-Buffer size over a full 24 h (day + night).

    During the day solar binds and buffer size barely matters; through
    the night every extra cabinet is extra serving time — which is where
    over-provisioning earns (or fails to earn) its cost.  Results are
    averaged over several cloud seeds: single days are noisy.  The
    count x seed grid fans out across worker processes.
    """
    cells = [
        dict(
            battery_count=count,
            solar_scale=solar_scale,
            seed=seed,
            mean_w=mean_w,
            use_cache=use_cache,
        )
        for count in battery_counts
        for seed in seeds
    ]
    all_summaries = run_cells(run_provisioning_cell, cells,
                              max_workers=max_workers, backend=backend)
    points = []
    for i, count in enumerate(battery_counts):
        summaries = all_summaries[i * len(seeds):(i + 1) * len(seeds)]
        points.append(ProvisioningPoint(
            battery_count=count,
            solar_scale=solar_scale,
            processed_gb=sum(s.processed_gb for s in summaries) / len(summaries),
            uptime_fraction=sum(s.uptime_fraction for s in summaries) / len(summaries),
            summaries=tuple(summaries),
        ))
    return points


def diminishing_returns(points: list[ProvisioningPoint]) -> list[float]:
    """Marginal GB processed per added cabinet, in sweep order."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    gains = []
    for previous, current in zip(points, points[1:], strict=False):
        gains.append(current.processed_gb - previous.processed_gb)
    return gains
