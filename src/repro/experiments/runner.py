"""Parallel experiment fan-out.

Every experiment matrix in the reproduction — controller × solar level ×
seed in the full-system comparison, Table 6's day × scheme grid, the
micro-benchmark sweep, the provisioning sweep — is a set of *independent*
deterministic cells.  :func:`run_cells` executes such a set through a
``concurrent.futures.ProcessPoolExecutor`` with ordered result collection,
so results are identical to the serial loop regardless of worker count,
and degrades gracefully to in-process execution when only one worker is
requested (or the platform cannot spawn a pool at all).

Determinism: each cell carries its own explicit seed (see
:func:`derive_seed` for deriving stable per-cell seeds from a base seed
and the cell's labels), and results are returned in submission order, so
the output never depends on scheduling.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import warnings
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.obs.ledger import SIGNED_EDGES
from repro.obs.registry import global_registry

ENV_WORKERS = "REPRO_WORKERS"
ENV_BACKEND = "REPRO_BACKEND"

#: run_cells execution backends.  ``auto`` is the historical behaviour
#: (process pool, degrading to serial); ``fleet`` routes the whole cell
#: batch through the vectorized SoA kernel when an adapter exists for the
#: cell function, falling back to pool/serial otherwise.
BACKENDS = ("auto", "fleet", "pool", "serial")


def _cell_label(index: int, cell: Mapping[str, Any]) -> str:
    """A short human-readable id for one cell (index + leading kwargs)."""
    parts = []
    for key, value in cell.items():
        if isinstance(value, (str, int, float, bool)):
            parts.append(f"{key}={value}")
        if len(parts) == 4:
            break
    detail = ", ".join(parts)
    return f"cell #{index}" + (f" ({detail})" if detail else "")


class CellExecutionError(Exception):
    """A pool-executed cell raised; names the failing cell for triage.

    Raised instead of the bare worker exception so a 200-cell sweep that
    dies in worker 7 reports *which* cell blew up, not just the traceback
    of the cell function.  The original exception is chained as
    ``__cause__``.  Deliberately not a ``RuntimeError`` subclass: the
    pool-infrastructure fallback catches ``RuntimeError`` and this must
    propagate, not trigger a silent serial re-run.
    """

    def __init__(self, index: int, cell: Mapping[str, Any],
                 cause: BaseException) -> None:
        self.index = index
        self.cell = dict(cell)
        super().__init__(
            f"{_cell_label(index, cell)} raised "
            f"{type(cause).__name__}: {cause}"
        )

#: Histogram buckets for cell runtimes (sub-second replays to minutes).
_CELL_SECONDS_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                         30.0, 60.0, 120.0, 300.0)

#: Emit the pool-unavailable warning once per process, not once per batch
#: (a matrix run dispatches many batches; the ``runner.pool_fallbacks_total``
#: counter still tracks every occurrence).
_POOL_WARNING_EMITTED = False


def derive_seed(base_seed: int, *labels: object, bits: int = 31) -> int:
    """A stable per-cell seed from a base seed and the cell's labels.

    Uses SHA-256 rather than ``hash()`` so the value is identical across
    processes and Python invocations (``PYTHONHASHSEED`` does not matter).
    """
    material = ":".join([str(int(base_seed))] + [str(label) for label in labels])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def default_workers(cells: int | None = None) -> int:
    """Worker count: ``REPRO_WORKERS`` env, else CPU count, capped to cells."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if raw:
        try:
            workers = max(1, int(raw))
        except ValueError:
            workers = 1
    else:
        workers = os.cpu_count() or 1
    if cells is not None:
        workers = min(workers, max(1, cells))
    return workers


def _run_serial(fn: Callable[..., Any], cells: Sequence[Mapping[str, Any]]) -> list[Any]:
    """Serial loop with per-cell runtime rollups into the global registry."""
    registry = global_registry()
    cell_seconds = registry.histogram("runner.cell_seconds",
                                      "wall time per experiment cell",
                                      buckets=_CELL_SECONDS_BUCKETS)
    cells_total = registry.counter("runner.cells_total",
                                   "experiment cells executed")
    failures = registry.counter("runner.cell_failures_total",
                                "experiment cells that raised")
    results = []
    for cell in cells:
        t0 = time.perf_counter()
        try:
            results.append(fn(**cell))
        except Exception:
            failures.inc()
            raise
        cell_seconds.observe(time.perf_counter() - t0)
        cells_total.inc()
    return results


def _fall_back_to_serial(fn, cells, exc: BaseException) -> list[Any]:
    """Warn (once per process) and degrade to the serial loop."""
    global _POOL_WARNING_EMITTED
    if not _POOL_WARNING_EMITTED:
        _POOL_WARNING_EMITTED = True
        warnings.warn(
            f"process pool unavailable for {len(cells)} cell(s) "
            f"({type(exc).__name__}: {exc}); running serially",
            RuntimeWarning,
            stacklevel=3,
        )
    global_registry().counter("runner.pool_fallbacks_total",
                              "times the process pool was unavailable").inc()
    return _run_serial(fn, cells)


def _roll_up_obs(results: Sequence[Any]) -> None:
    """Fold per-cell observability payloads into the global registry.

    Cells that return a mapping with ``ledger_edges`` (edge → Wh) and/or
    ``alert_counts`` (rule → count) contribute to the fleet totals
    ``runner.ledger_wh_total{edge=...}`` and ``runner.alerts_total{rule=...}``.
    Signed balance edges (Δstored, residuals) are accounting checks, not
    flows, and are excluded — as is any negative value (counters only go up).
    """
    registry = global_registry()
    for result in results:
        if not isinstance(result, Mapping):
            continue
        edges = result.get("ledger_edges")
        if isinstance(edges, Mapping):
            for edge, wh in edges.items():
                if edge not in SIGNED_EDGES and wh > 0.0:
                    registry.counter("runner.ledger_wh_total",
                                     "fleet-total energy per flow edge",
                                     edge=edge).inc(float(wh))
        alerts = result.get("alert_counts")
        if isinstance(alerts, Mapping):
            for rule, count in alerts.items():
                if count > 0:
                    registry.counter("runner.alerts_total",
                                     "fleet-total alerts per rule",
                                     rule=rule).inc(int(count))


def _try_fleet_backend(
    fn: Callable[..., Any], cells: Sequence[Mapping[str, Any]]
) -> list[Any] | None:
    """Route the batch through the vectorized kernel; None on fallback."""
    registry = global_registry()
    try:
        from repro.experiments.adapters import run_cells_fleet

        t0 = time.perf_counter()
        results = run_cells_fleet(fn, cells)
    except Exception as exc:
        from repro.sim.fleet import FleetUnsupported

        if not isinstance(exc, (FleetUnsupported, ImportError)):
            raise
        registry.counter(
            "runner.fleet_fallbacks_total",
            "cell batches the fleet backend routed back to pool/serial",
        ).inc()
        warnings.warn(
            f"fleet backend unavailable for {len(cells)} cell(s) "
            f"({type(exc).__name__}: {exc}); using pool/serial",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    registry.histogram("runner.batch_seconds",
                       "wall time per parallel cell batch",
                       buckets=_CELL_SECONDS_BUCKETS).observe(
        time.perf_counter() - t0)
    registry.counter("runner.cells_total",
                     "experiment cells executed").inc(len(cells))
    registry.counter("runner.fleet_cells_total",
                     "experiment cells executed by the fleet backend").inc(
        len(cells))
    return results


def run_cells(
    fn: Callable[..., Any],
    cells: Sequence[Mapping[str, Any]],
    max_workers: int | None = None,
    backend: str | None = None,
) -> list[Any]:
    """Run ``fn(**cell)`` for every cell; results in submission order.

    Parameters
    ----------
    fn:
        A *module-level* callable (it must be picklable to cross the
        process boundary).  Each cell is a mapping of keyword arguments.
    max_workers:
        Pool size; ``None`` uses :func:`default_workers`.  A value of 1 —
        or any failure to stand up a process pool (missing ``fork``,
        sandboxed interpreter, …) — falls back to the serial loop, whose
        results are identical by construction.
    backend:
        One of :data:`BACKENDS`; ``None`` reads ``REPRO_BACKEND`` and
        defaults to ``auto`` (pool with serial fallback).  ``fleet``
        batches every cell through the vectorized SoA kernel when the
        cell function has a registered adapter, and degrades to the
        pool/serial path when numpy is missing or any cell is
        unsupported.  ``serial`` forces the in-process loop.
    """
    cells = list(cells)
    if not cells:
        return []
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "").strip() or "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {BACKENDS})"
        )
    if backend == "fleet":
        results = _try_fleet_backend(fn, cells)
        if results is not None:
            _roll_up_obs(results)
            return results
    if backend == "serial":
        results = _run_serial(fn, cells)
        _roll_up_obs(results)
        return results
    workers = default_workers(len(cells)) if max_workers is None else max_workers
    workers = min(max(1, int(workers)), len(cells))
    if workers <= 1:
        results = _run_serial(fn, cells)
        _roll_up_obs(results)
        return results

    try:
        from concurrent.futures import ProcessPoolExecutor
    except ImportError as exc:  # pragma: no cover - stdlib always has it
        results = _fall_back_to_serial(fn, cells, exc)
        _roll_up_obs(results)
        return results

    registry = global_registry()
    try:
        from concurrent.futures.process import BrokenProcessPool

        # Probe fn's picklability up front: an unpicklable callable (lambda,
        # closure) fails for every cell, and the failure type varies by
        # Python version (PicklingError vs AttributeError), so catching it
        # here keeps the degrade-to-serial path deterministic and leaves
        # the in-pool wrapper below to report genuine per-cell bugs.
        pickle.dumps(fn)

        t0 = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, **cell) for cell in cells]
            results = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except (BrokenProcessPool, pickle.PicklingError):
                    # Pool infrastructure failure, not a cell bug: let the
                    # fallback handler below re-run the batch serially.
                    raise
                except Exception as exc:
                    # The cell itself raised.  Re-raise named so a big
                    # sweep reports which cell failed, and skip the
                    # pointless serial re-run of the whole batch.
                    registry.counter(
                        "runner.cell_failures_total",
                        "experiment cells that raised").inc()
                    raise CellExecutionError(index, cells[index], exc) from exc
        registry.histogram("runner.batch_seconds",
                           "wall time per parallel cell batch",
                           buckets=_CELL_SECONDS_BUCKETS).observe(
            time.perf_counter() - t0)
        registry.counter("runner.cells_total",
                         "experiment cells executed").inc(len(cells))
        _roll_up_obs(results)
        return results
    except (OSError, ValueError, RuntimeError, NotImplementedError,
            ImportError, AttributeError, pickle.PicklingError) as exc:
        # Platforms without fork/spawn support, restricted environments
        # (e.g. a sandboxed /dev/shm breaking multiprocessing locks), or
        # unpicklable work (lambdas, closures) degrade to the serial
        # path, whose results are identical by construction.
        results = _fall_back_to_serial(fn, cells, exc)
        _roll_up_obs(results)
        return results
