"""Parallel experiment fan-out.

Every experiment matrix in the reproduction — controller × solar level ×
seed in the full-system comparison, Table 6's day × scheme grid, the
micro-benchmark sweep, the provisioning sweep — is a set of *independent*
deterministic cells.  :func:`run_cells` executes such a set through a
``concurrent.futures.ProcessPoolExecutor`` with ordered result collection,
so results are identical to the serial loop regardless of worker count,
and degrades gracefully to in-process execution when only one worker is
requested (or the platform cannot spawn a pool at all).

Determinism: each cell carries its own explicit seed (see
:func:`derive_seed` for deriving stable per-cell seeds from a base seed
and the cell's labels), and results are returned in submission order, so
the output never depends on scheduling.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Callable, Mapping, Sequence

ENV_WORKERS = "REPRO_WORKERS"


def derive_seed(base_seed: int, *labels: object, bits: int = 31) -> int:
    """A stable per-cell seed from a base seed and the cell's labels.

    Uses SHA-256 rather than ``hash()`` so the value is identical across
    processes and Python invocations (``PYTHONHASHSEED`` does not matter).
    """
    material = ":".join([str(int(base_seed))] + [str(label) for label in labels])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def default_workers(cells: int | None = None) -> int:
    """Worker count: ``REPRO_WORKERS`` env, else CPU count, capped to cells."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if raw:
        try:
            workers = max(1, int(raw))
        except ValueError:
            workers = 1
    else:
        workers = os.cpu_count() or 1
    if cells is not None:
        workers = min(workers, max(1, cells))
    return workers


def _run_serial(fn: Callable[..., Any], cells: Sequence[Mapping[str, Any]]) -> list[Any]:
    return [fn(**cell) for cell in cells]


def run_cells(
    fn: Callable[..., Any],
    cells: Sequence[Mapping[str, Any]],
    max_workers: int | None = None,
) -> list[Any]:
    """Run ``fn(**cell)`` for every cell; results in submission order.

    Parameters
    ----------
    fn:
        A *module-level* callable (it must be picklable to cross the
        process boundary).  Each cell is a mapping of keyword arguments.
    max_workers:
        Pool size; ``None`` uses :func:`default_workers`.  A value of 1 —
        or any failure to stand up a process pool (missing ``fork``,
        sandboxed interpreter, …) — falls back to the serial loop, whose
        results are identical by construction.
    """
    cells = list(cells)
    if not cells:
        return []
    workers = default_workers(len(cells)) if max_workers is None else max_workers
    workers = min(max(1, int(workers)), len(cells))
    if workers <= 1:
        return _run_serial(fn, cells)

    try:
        from concurrent.futures import ProcessPoolExecutor
    except ImportError:  # pragma: no cover - stdlib always has it
        return _run_serial(fn, cells)

    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, **cell) for cell in cells]
            return [future.result() for future in futures]
    except (OSError, ValueError, RuntimeError, NotImplementedError,
            ImportError, AttributeError, pickle.PicklingError):
        # Platforms without fork/spawn support, restricted environments,
        # or unpicklable work (lambdas, closures) degrade to the serial
        # path, whose results are identical by construction.
        return _run_serial(fn, cells)
