"""Monte Carlo provisioning: distributions, not seed-triple averages.

The provisioning sweep (:mod:`repro.experiments.provisioning`) averages
three cloud seeds per e-Buffer size — enough for the diminishing-returns
trend, far too few for tail statistics ("what buffer size keeps p5 uptime
above 90 %?").  This mode fans hundreds of seed-varied day-and-night runs
per configuration through :func:`repro.experiments.runner.run_cells` with
the ``fleet`` backend (falling back to pool/serial when numpy is missing),
and reports per-configuration percentile envelopes instead of means.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.provisioning import run_provisioning_cell
from repro.experiments.runner import derive_seed, run_cells

#: Percentiles reported for every metric envelope.
PERCENTILES = (5, 25, 50, 75, 95)


def percentile(values: list[float], pct: float) -> float:
    """Linear-interpolation percentile (numpy 'linear'), pure Python.

    Implemented locally so the pool/serial fallback path reports the same
    numbers without numpy installed.
    """
    if not values:
        raise ValueError("need at least one value")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class MonteCarloPoint:
    """Distributional outcome of one (battery_count, solar_scale) config."""

    battery_count: int
    solar_scale: float
    samples: int
    uptime_pct: dict[int, float]      # percentile -> uptime fraction
    processed_pct: dict[int, float]   # percentile -> processed GB
    min_voltage_pct: dict[int, float]  # percentile -> min battery voltage

    def describe(self) -> str:
        up = ", ".join(f"p{p}={v * 100:.1f}%"
                       for p, v in sorted(self.uptime_pct.items()))
        return (f"{self.battery_count} cabinets x{self.solar_scale:g}: "
                f"uptime {up}")


def monte_carlo_cells(
    battery_counts: tuple[int, ...],
    solar_scale: float,
    samples: int,
    base_seed: int,
    mean_w: float,
    use_cache: bool,
) -> list[dict]:
    """The cell grid, in (battery_count, sample) order."""
    return [
        dict(
            battery_count=count,
            solar_scale=solar_scale,
            seed=derive_seed(base_seed, "montecarlo", count, sample),
            mean_w=mean_w,
            use_cache=use_cache,
        )
        for count in battery_counts
        for sample in range(samples)
    ]


def run_monte_carlo(
    battery_counts: tuple[int, ...] = (2, 3, 4, 5),
    solar_scale: float = 1.0,
    samples: int = 64,
    base_seed: int = 7,
    mean_w: float = 900.0,
    backend: str | None = "fleet",
    max_workers: int | None = None,
    use_cache: bool = True,
) -> list[MonteCarloPoint]:
    """Percentile envelopes per buffer size over seed-randomised days.

    Each sample replays the day-and-night provisioning cell on a distinct
    sha256-derived seed, so the cloud/noise realisations are independent
    but reproducible.  With the ``fleet`` backend the whole grid runs as
    one SoA batch per battery count; unsupported environments degrade to
    the process pool transparently.
    """
    cells = monte_carlo_cells(battery_counts, solar_scale, samples,
                              base_seed, mean_w, use_cache)
    summaries = run_cells(run_provisioning_cell, cells,
                          max_workers=max_workers, backend=backend)
    points = []
    for i, count in enumerate(battery_counts):
        block = summaries[i * samples:(i + 1) * samples]
        uptimes = [s.uptime_fraction for s in block]
        processed = [s.processed_gb for s in block]
        min_v = [s.min_battery_voltage for s in block]
        points.append(MonteCarloPoint(
            battery_count=count,
            solar_scale=solar_scale,
            samples=samples,
            uptime_pct={p: percentile(uptimes, p) for p in PERCENTILES},
            processed_pct={p: percentile(processed, p) for p in PERCENTILES},
            min_voltage_pct={p: percentile(min_v, p) for p in PERCENTILES},
        ))
    return points


def format_monte_carlo(points: list[MonteCarloPoint]) -> str:
    """Render the percentile envelopes as a fixed-width table."""
    header = (f"{'Cabinets':>8s} {'Samples':>7s} "
              + " ".join(f"{'up p' + str(p):>8s}" for p in PERCENTILES)
              + " " + " ".join(f"{'GB p' + str(p):>8s}" for p in (5, 50, 95)))
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.battery_count:>8d} {point.samples:>7d} "
            + " ".join(f"{point.uptime_pct[p] * 100:>7.1f}%"
                       for p in PERCENTILES)
            + " " + " ".join(f"{point.processed_pct[p]:>8.1f}"
                             for p in (5, 50, 95))
        )
    return "\n".join(lines)
