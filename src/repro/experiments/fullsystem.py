"""Full-system evaluation (Figures 20 and 21).

Runs the complete installation on the paper's scaled solar traces
(1000 W and 500 W average) under InSURE and the baseline, for the batch
(seismic) and stream (video) case studies, and reports the six-metric
improvement vectors.

Each (controller, workload, solar, seed) cell is an independent
deterministic run, so the figure matrices fan out through
:mod:`repro.experiments.runner` and individual cell summaries are memoised
in the content-addressed run cache (:mod:`repro.sim.cache`) — repeating an
identical configuration replays from disk instead of re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import build_system
from repro.experiments.runner import run_cells
from repro.sim.cache import (
    cache_key,
    default_cache,
    summary_from_payload,
    summary_to_payload,
)
from repro.solar.traces import make_day_trace
from repro.telemetry.analyzer import all_improvements
from repro.telemetry.metrics import RunSummary
from repro.workloads import SeismicAnalysis, VideoSurveillance

#: Figures 20-21 solar operating points.
HIGH_MEAN_W = 1000.0
LOW_MEAN_W = 500.0


@dataclass
class ComparisonResult:
    """InSURE vs baseline at one operating point."""

    workload: str
    solar_mean_w: float
    insure: RunSummary
    baseline: RunSummary

    @property
    def improvements(self) -> dict[str, float]:
        return all_improvements(self.insure, self.baseline)


def _make_workload(kind: str):
    if kind == "seismic":
        return SeismicAnalysis()
    if kind == "video":
        return VideoSurveillance()
    raise ValueError(f"unknown workload kind {kind!r}")


def run_single(
    controller: str,
    workload_kind: str,
    profile: str,
    solar_mean_w: float,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    use_cache: bool = True,
) -> RunSummary:
    """One deterministic full-system run, memoised in the run cache.

    This is the unit of work the parallel runner distributes: module-level
    (picklable), fully parameterised, and returning only the summary.
    """
    cache = default_cache() if use_cache else None
    key = None
    if cache is not None and cache.enabled:
        key = cache_key(
            "fullsystem.run_single",
            controller=controller,
            workload=workload_kind,
            profile=profile,
            solar_mean_w=solar_mean_w,
            seed=seed,
            initial_soc=initial_soc,
            dt=dt,
        )
        cached = cache.get(key)
        if cached is not None:
            return summary_from_payload(cached)

    trace = make_day_trace(profile, dt_seconds=dt, seed=seed,
                           target_mean_w=solar_mean_w)
    system = build_system(
        trace,
        _make_workload(workload_kind),
        controller=controller,
        seed=seed,
        initial_soc=initial_soc,
        dt=dt,
    )
    summary = system.run()
    if cache is not None and key is not None:
        cache.put(key, summary_to_payload(summary))
    return summary


def _profile_for(solar_mean_w: float) -> str:
    return "sunny" if solar_mean_w >= 800.0 else "cloudy"


def run_fullsystem_comparison(
    workload_kind: str,
    solar_mean_w: float,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    use_cache: bool = True,
) -> ComparisonResult:
    """One cell of the Figures 20/21 matrix."""
    profile = _profile_for(solar_mean_w)
    results: dict[str, RunSummary] = {}
    for controller in ("insure", "baseline"):
        results[controller] = run_single(
            controller, workload_kind, profile, solar_mean_w,
            seed=seed, initial_soc=initial_soc, dt=dt, use_cache=use_cache,
        )
    return ComparisonResult(
        workload=workload_kind,
        solar_mean_w=solar_mean_w,
        insure=results["insure"],
        baseline=results["baseline"],
    )


def _run_figure_matrix(
    workload_kind: str,
    seed: int,
    max_workers: int | None,
    use_cache: bool,
    backend: str | None = None,
) -> dict[str, ComparisonResult]:
    """Fan the four (level × controller) cells out across workers."""
    cells = []
    for mean_w in (HIGH_MEAN_W, LOW_MEAN_W):
        for controller in ("insure", "baseline"):
            cells.append(dict(
                controller=controller,
                workload_kind=workload_kind,
                profile=_profile_for(mean_w),
                solar_mean_w=mean_w,
                seed=seed,
                use_cache=use_cache,
            ))
    summaries = run_cells(run_single, cells, max_workers=max_workers,
                          backend=backend)
    results = {}
    for label, mean_w, offset in (("high", HIGH_MEAN_W, 0), ("low", LOW_MEAN_W, 2)):
        results[label] = ComparisonResult(
            workload=workload_kind,
            solar_mean_w=mean_w,
            insure=summaries[offset],
            baseline=summaries[offset + 1],
        )
    return results


def run_figure20(
    seed: int = 1,
    max_workers: int | None = None,
    use_cache: bool = True,
    backend: str | None = None,
) -> dict[str, ComparisonResult]:
    """Figure 20: in-situ batch job at high and low solar."""
    return _run_figure_matrix("seismic", seed, max_workers, use_cache, backend)


def run_figure21(
    seed: int = 1,
    max_workers: int | None = None,
    use_cache: bool = True,
    backend: str | None = None,
) -> dict[str, ComparisonResult]:
    """Figure 21: in-situ data stream at high and low solar."""
    return _run_figure_matrix("video", seed, max_workers, use_cache, backend)
