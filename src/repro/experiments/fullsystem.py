"""Full-system evaluation (Figures 20 and 21).

Runs the complete installation on the paper's scaled solar traces
(1000 W and 500 W average) under InSURE and the baseline, for the batch
(seismic) and stream (video) case studies, and reports the six-metric
improvement vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.telemetry.analyzer import all_improvements
from repro.telemetry.metrics import RunSummary
from repro.workloads import SeismicAnalysis, VideoSurveillance

#: Figures 20-21 solar operating points.
HIGH_MEAN_W = 1000.0
LOW_MEAN_W = 500.0


@dataclass
class ComparisonResult:
    """InSURE vs baseline at one operating point."""

    workload: str
    solar_mean_w: float
    insure: RunSummary
    baseline: RunSummary

    @property
    def improvements(self) -> dict[str, float]:
        return all_improvements(self.insure, self.baseline)


def _make_workload(kind: str):
    if kind == "seismic":
        return SeismicAnalysis()
    if kind == "video":
        return VideoSurveillance()
    raise ValueError(f"unknown workload kind {kind!r}")


def run_fullsystem_comparison(
    workload_kind: str,
    solar_mean_w: float,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
) -> ComparisonResult:
    """One cell of the Figures 20/21 matrix."""
    profile = "sunny" if solar_mean_w >= 800.0 else "cloudy"
    results: dict[str, RunSummary] = {}
    for controller in ("insure", "baseline"):
        trace = make_day_trace(profile, dt_seconds=dt, seed=seed,
                               target_mean_w=solar_mean_w)
        system = build_system(
            trace,
            _make_workload(workload_kind),
            controller=controller,
            seed=seed,
            initial_soc=initial_soc,
            dt=dt,
        )
        results[controller] = system.run()
    return ComparisonResult(
        workload=workload_kind,
        solar_mean_w=solar_mean_w,
        insure=results["insure"],
        baseline=results["baseline"],
    )


def run_figure20(seed: int = 1) -> dict[str, ComparisonResult]:
    """Figure 20: in-situ batch job at high and low solar."""
    return {
        "high": run_fullsystem_comparison("seismic", HIGH_MEAN_W, seed),
        "low": run_fullsystem_comparison("seismic", LOW_MEAN_W, seed),
    }


def run_figure21(seed: int = 1) -> dict[str, ComparisonResult]:
    """Figure 21: in-situ data stream at high and low solar."""
    return {
        "high": run_fullsystem_comparison("video", HIGH_MEAN_W, seed),
        "low": run_fullsystem_comparison("video", LOW_MEAN_W, seed),
    }
