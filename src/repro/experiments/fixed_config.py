"""Fixed-configuration energy-budget runs (Tables 2 and 3).

The paper's §2.3 motivation experiments hold the VM count fixed and give
every configuration the same stored-energy budget (2 kWh), then measure
availability, throughput and delay.  A minimal protection controller is
used: when a cabinet's loaded voltage approaches the LVD, the servers are
checkpointed and the system rests until the recovery effect lifts the
voltage back, then restarts — mirroring the prototype's emergency
handling without any spatio-temporal optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.bank import BatteryBank
from repro.battery.charger import SolarCharger
from repro.battery.unit import BatteryMode
from repro.cluster.allocator import NodeAllocator
from repro.cluster.rack import ServerRack
from repro.power.bus import PowerBus
from repro.sim.clock import Clock
from repro.sim.events import EventLog
from repro.workloads.base import Workload

#: Default experiment energy budget (Tables 2 and 3).
BUDGET_KWH = 2.0


@dataclass
class FixedConfigResult:
    """Outcome of one fixed-VM-count budget run."""

    vm_count: int
    avg_power_w: float
    availability: float
    throughput_gb_per_hour: float
    mean_delay_minutes: float
    processed_gb: float
    elapsed_h: float
    protection_stops: int


def run_fixed_config(
    workload: Workload,
    vm_count: int,
    budget_kwh: float = BUDGET_KWH,
    solar_w: float = 0.0,
    dt: float = 5.0,
    max_hours: float = 12.0,
    battery_count: int = 3,
) -> FixedConfigResult:
    """Run ``workload`` at a fixed VM count until the budget is spent."""
    if vm_count < 1:
        raise ValueError("vm_count must be >= 1")
    if budget_kwh <= 0:
        raise ValueError("budget_kwh must be positive")

    bank = BatteryBank.build(count=battery_count, soc=1.0)
    # Scale initial charge so the bank holds exactly the budget.
    start_soc = min(1.0, budget_kwh * 1000.0 / bank.capacity_wh)
    for unit in bank:
        unit.kibam.set_soc(start_soc)
        unit.set_mode(BatteryMode.DISCHARGING)
    bus = PowerBus(bank, charger=SolarCharger())

    events = EventLog()
    rack = ServerRack("rack", server_count=4, events=events)
    allocator = NodeAllocator(rack, cpu_share=workload.cpu_share)
    allocator.set_target(vm_count)

    clock = Clock(dt=dt, start_hour=8.0)
    cutoff = bank[0].params.voltage.v_cutoff
    serving_s = 0.0
    power_integral = 0.0
    protection_stops = 0
    resting = False
    rest_elapsed = 0.0

    while clock.t < max_hours * 3600.0:
        rack.step(clock)
        demand = rack.demand_w
        report = bus.resolve(solar_w, demand, dt)

        compute = rack.last_compute_seconds
        if report.unserved_w > 5.0:
            rack.emergency_shed(clock.t)
            workload.on_crash()
            compute = 0.0
        workload.step(clock.t, dt, compute)

        if rack.serving():
            serving_s += dt
            power_integral += demand * dt

        min_loaded_v = min(u.terminal_voltage for u in bank)
        if not resting and min_loaded_v <= cutoff + 0.1 and demand > solar_w:
            # Protection: checkpoint, rest, wait for recovery.
            workload.checkpoint_all()
            allocator.set_target(0, clock.t)
            rack.graceful_stop_all(clock.t)
            protection_stops += 1
            resting = True
            rest_elapsed = 0.0
            # If even the fully-equalised OCV cannot reach the restart
            # threshold, the remaining charge is stranded by the
            # rate-capacity effect: the usable budget is exhausted.
            equalised = min(
                u.voltage_model.emf(u.soc) for u in bank
            )
            if equalised < cutoff + 0.8:
                break
        elif resting:
            rest_elapsed += dt
            rested_v = min(u.open_circuit_voltage for u in bank)
            if rested_v >= cutoff + 0.8:
                allocator.set_target(vm_count, clock.t)
                resting = False
            elif rest_elapsed > 2700.0 or bank.mean_soc < 0.12:
                # Recovery has plateaued below the restart threshold: the
                # usable budget is exhausted.
                break
        if bank.mean_soc < 0.08:
            break

        clock.advance()

    elapsed_h = clock.t / 3600.0
    stats = workload.stats
    return FixedConfigResult(
        vm_count=vm_count,
        avg_power_w=power_integral / serving_s if serving_s > 0 else 0.0,
        availability=serving_s / clock.t if clock.t > 0 else 0.0,
        throughput_gb_per_hour=stats.processed_gb / elapsed_h if elapsed_h > 0 else 0.0,
        mean_delay_minutes=stats.mean_delay_minutes,
        processed_gb=stats.processed_gb,
        elapsed_h=elapsed_h,
        protection_stops=protection_stops,
    )


def run_energy_window(
    workload: Workload,
    vm_count: int,
    budget_kwh: float = BUDGET_KWH,
    dt: float = 5.0,
    battery_count: int = 6,
) -> FixedConfigResult:
    """Run at a fixed VM count until the load has consumed ``budget_kwh``.

    Table 3's framing: every configuration gets the same energy, so a
    lighter configuration runs proportionally longer.  A six-cabinet bank
    provides enough headroom that the configuration itself (not battery
    protection) is what's being measured.
    """
    if vm_count < 1:
        raise ValueError("vm_count must be >= 1")
    if budget_kwh <= 0:
        raise ValueError("budget_kwh must be positive")

    bank = BatteryBank.build(count=battery_count, soc=1.0)
    for unit in bank:
        unit.set_mode(BatteryMode.DISCHARGING)
    bus = PowerBus(bank, charger=SolarCharger())
    events = EventLog()
    rack = ServerRack("rack", server_count=4, events=events)
    allocator = NodeAllocator(rack, cpu_share=workload.cpu_share)
    allocator.set_target(vm_count)

    clock = Clock(dt=dt, start_hour=8.0)
    serving_s = 0.0
    power_integral_wh = 0.0
    power_while_serving = 0.0
    warm = False

    while power_integral_wh < budget_kwh * 1000.0 and clock.t < 24 * 3600.0:
        rack.step(clock)
        demand = rack.demand_w
        report = bus.resolve(0.0, demand, dt)
        compute = rack.last_compute_seconds
        if report.unserved_w > 5.0:
            rack.emergency_shed(clock.t)
            workload.on_crash()
            compute = 0.0
        # Warm start: data only begins arriving once the cluster serves,
        # so the boot transient does not pollute the delay measurement.
        if not warm and rack.serving():
            warm = True
        if warm:
            workload.step(clock.t, dt, compute)
            power_integral_wh += demand * dt / 3600.0
        if rack.serving():
            serving_s += dt
            power_while_serving += demand * dt
        clock.advance()

    elapsed_h = clock.t / 3600.0
    stats = workload.stats
    return FixedConfigResult(
        vm_count=vm_count,
        avg_power_w=power_while_serving / serving_s if serving_s > 0 else 0.0,
        availability=serving_s / clock.t if clock.t > 0 else 0.0,
        throughput_gb_per_hour=stats.processed_gb / elapsed_h if elapsed_h > 0 else 0.0,
        mean_delay_minutes=stats.mean_delay_minutes,
        processed_gb=stats.processed_gb,
        elapsed_h=elapsed_h,
        protection_stops=0,
    )
