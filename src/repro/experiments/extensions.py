"""Extension experiments beyond the paper's headline evaluation.

The paper's discussion sections motivate three follow-ups we implement:

* **Heterogeneous low-power nodes** (§6.2/Table 7: "by using low-power
  servers, InSURE can improve data throughput by 5x-15x") — a full-day
  run of an InSURE pod built from Core i7 nodes versus the Xeon pod.
* **Secondary power** (Fig. 6 "supports a secondary power if available")
  — a rainy day with and without a diesel backup genset.
* **Multi-day operation** — several consecutive days with overnight gaps,
  exercising the SPM's budget carry-over (D_U of Eq. 1) and the wear
  model's long-horizon projections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.profiles import CORE_I7, XEON_DL380
from repro.core.system import build_system
from repro.experiments.runner import run_cells
from repro.power.secondary import DieselGenerator, HybridSource
from repro.sim.cache import (
    cache_key,
    default_cache,
    summary_from_payload,
    summary_to_payload,
)
from repro.solar.field import TracePlayer
from repro.solar.traces import DayTrace, make_day_trace
from repro.telemetry.metrics import RunSummary
from repro.workloads import VideoSurveillance

_SERVER_PROFILES = {"xeon": XEON_DL380, "i7": CORE_I7}


@dataclass
class HeteroResult:
    """Xeon pod versus Core i7 pod over the same day."""

    xeon: RunSummary
    i7: RunSummary

    @property
    def throughput_gain(self) -> float:
        if self.xeon.throughput_gb_per_hour <= 0:
            return float("inf")
        return self.i7.throughput_gb_per_hour / self.xeon.throughput_gb_per_hour

    @property
    def perf_per_kwh_gain(self) -> float:
        xeon_eff = self.xeon.processed_gb / max(self.xeon.load_energy_kwh, 1e-9)
        i7_eff = self.i7.processed_gb / max(self.i7.load_energy_kwh, 1e-9)
        return i7_eff / max(xeon_eff, 1e-9)


def run_hetero_cell(
    server_kind: str,
    seed: int = 5,
    mean_w: float = 500.0,
    use_cache: bool = True,
) -> RunSummary:
    """One cloudy-day run on a given server generation (picklable)."""
    profile = _SERVER_PROFILES[server_kind]
    cache = default_cache() if use_cache else None
    key = None
    if cache is not None and cache.enabled:
        key = cache_key(
            "extensions.hetero",
            server_kind=server_kind,
            seed=seed,
            mean_w=mean_w,
        )
        cached = cache.get(key)
        if cached is not None:
            return summary_from_payload(cached)

    trace = make_day_trace("cloudy", seed=seed, target_mean_w=mean_w)
    system = build_system(
        trace,
        VideoSurveillance(),
        controller="insure",
        server_profile=profile,
        seed=seed,
        initial_soc=0.55,
    )
    summary = system.run()
    if cache is not None and key is not None:
        cache.put(key, summary_to_payload(summary))
    return summary


def run_heterogeneous_day(
    seed: int = 5,
    mean_w: float = 500.0,
    max_workers: int | None = None,
    use_cache: bool = True,
) -> HeteroResult:
    """Same cloudy day and buffer; only the server generation differs."""
    cells = [
        dict(server_kind=kind, seed=seed, mean_w=mean_w, use_cache=use_cache)
        for kind in ("xeon", "i7")
    ]
    xeon, i7 = run_cells(run_hetero_cell, cells, max_workers=max_workers)
    return HeteroResult(xeon=xeon, i7=i7)


@dataclass
class BackupResult:
    """Rainy day with and without a diesel backup."""

    solar_only: RunSummary
    with_backup: RunSummary
    fuel_litres: float
    fuel_cost_usd: float
    genset_starts: int

    @property
    def uptime_gain(self) -> float:
        base = max(self.solar_only.uptime_fraction, 1e-9)
        return self.with_backup.uptime_fraction / base - 1.0


def run_backup_day(seed: int = 6) -> BackupResult:
    """A rainy day (3 kWh of solar) with a 2 kW genset as secondary."""
    trace = make_day_trace("rainy", seed=seed, target_energy_kwh=3.0)

    solar_system = build_system(trace, VideoSurveillance(), controller="insure",
                                seed=seed, initial_soc=0.4)
    solar_summary = solar_system.run()

    backup_trace = make_day_trace("rainy", seed=seed, target_energy_kwh=3.0)
    generator = DieselGenerator()
    hybrid = HybridSource(
        "hybrid", TracePlayer("solar", backup_trace), generator
    )
    hybrid_system = build_system(None, VideoSurveillance(), controller="insure",
                                 seed=seed, initial_soc=0.4, source=hybrid)
    hybrid_summary = hybrid_system.run(backup_trace.duration_s)

    return BackupResult(
        solar_only=solar_summary,
        with_backup=hybrid_summary,
        fuel_litres=generator.fuel_litres,
        fuel_cost_usd=generator.fuel_cost_usd,
        genset_starts=generator.starts,
    )


@dataclass
class StoragePressureResult:
    """Rainy-day surveillance with an undersized raw-data buffer."""

    insure: RunSummary
    baseline: RunSummary

    @property
    def loss_reduction(self) -> float:
        """Fraction of the baseline's data loss that InSURE avoids."""
        if self.baseline.dropped_gb <= 0:
            return 0.0
        return 1.0 - self.insure.dropped_gb / self.baseline.dropped_gb


def run_storage_cell(
    controller: str,
    seed: int = 8,
    disk_gb: float = 10.0,
    use_cache: bool = True,
) -> RunSummary:
    """One storage-pressure run for a given controller (picklable)."""
    cache = default_cache() if use_cache else None
    key = None
    if cache is not None and cache.enabled:
        key = cache_key(
            "extensions.storage_pressure",
            controller=controller,
            seed=seed,
            disk_gb=disk_gb,
        )
        cached = cache.get(key)
        if cached is not None:
            return summary_from_payload(cached)

    trace = make_day_trace("sunny", seed=seed, target_energy_kwh=9.5)
    workload = VideoSurveillance(rate_gb_per_min=0.105)
    system = build_system(trace, workload, controller=controller,
                          seed=seed, initial_soc=0.35, storage_gb=disk_gb)
    summary = system.run()
    if cache is not None and key is not None:
        cache.put(key, summary_to_payload(summary))
    return summary


def run_storage_pressure_day(
    seed: int = 8,
    disk_gb: float = 10.0,
    max_workers: int | None = None,
    use_cache: bool = True,
) -> StoragePressureResult:
    """A 12-camera surveillance day with only ``disk_gb`` of buffer.

    The stream keeps arriving whether or not the servers run, and the
    undersized disk holds less than two hours of footage: whoever spends
    longer dark overwrites footage it can never recover, even with energy
    to spare later.  (With the full 24-camera load, loss is energy-bound
    and both systems drop alike — the interesting regime is this one.)
    """
    cells = [
        dict(controller=controller, seed=seed, disk_gb=disk_gb,
             use_cache=use_cache)
        for controller in ("insure", "baseline")
    ]
    insure, baseline = run_cells(run_storage_cell, cells,
                                 max_workers=max_workers)
    return StoragePressureResult(insure=insure, baseline=baseline)


@dataclass
class MultiDayResult:
    """Several consecutive days of standalone operation."""

    per_day: list[RunSummary]
    total_processed_gb: float
    final_life_days: float
    discharge_imbalance_ah: float


def _multi_day_trace(days: int, seed: int, mean_w: float, dt: float) -> DayTrace:
    """Concatenate day traces with 11-hour overnight gaps."""
    profiles = ("sunny", "cloudy", "rainy")
    night = np.zeros(int(11 * 3600 / dt))
    pieces = []
    for day in range(days):
        trace = make_day_trace(profiles[day % 3], dt_seconds=dt,
                               seed=seed + day, target_mean_w=mean_w)
        pieces.append(trace.power_w)
        if day != days - 1:
            pieces.append(night)
    return DayTrace(start_hour=7.0, dt_seconds=dt,
                    power_w=np.concatenate(pieces))


def run_multiday(days: int = 3, seed: int = 9, mean_w: float = 700.0,
                 dt: float = 10.0) -> MultiDayResult:
    """Run ``days`` consecutive days under InSURE; summarise per day."""
    if days < 1:
        raise ValueError("days must be >= 1")
    trace = _multi_day_trace(days, seed, mean_w, dt)
    system = build_system(trace, VideoSurveillance(), controller="insure",
                          seed=seed, initial_soc=0.55, dt=dt)
    per_day: list[RunSummary] = []
    day_length = (13 + 11) * 3600.0
    for day in range(days):
        duration = min(day_length, trace.duration_s - day * day_length)
        system.engine.run(duration)
        per_day.append(system.metrics.summary())
    final = per_day[-1]
    return MultiDayResult(
        per_day=per_day,
        total_processed_gb=final.processed_gb,
        final_life_days=final.projected_life_days,
        discharge_imbalance_ah=final.discharge_imbalance_ah,
    )
