"""Policy scenario cells: sustainability overlays on the golden plant.

Each scenario pins one (controller, workload, weather) plant configuration
and attaches a set of :class:`repro.policy.policy.Policy` overlays — the
signal × governor × control-method compositions of :mod:`repro.policy` —
turning the paper's solar-only installation into a grid-aware one:

* ``carbon-chasing`` — a step governor over the synthetic grid carbon
  intensity caps the rack DVFS duty cycle when the grid runs dirty, so
  compute concentrates in the low-carbon midday window.
* ``price-arbitrage`` — a linear governor over the synthetic day-ahead
  energy price ramps the VM target down as the price climbs through the
  morning and evening demand peaks.
* ``grid-hybrid`` — a carbon zone table caps duty *and* a price staircase
  caps the solar charge current (high-price surplus is exported rather
  than stored), the grid-assisted hybrid of the two.

Scenarios are deterministic cells exactly like the golden matrix: the
seed derives from the scenario name, the synthetic signals are pure
functions of (seed, t), and ``repro validate`` pins their trace digests
alongside the 12 matrix cells.  :func:`run_scenario_cell` is the
picklable experiment entry point (memoised in the run cache, fleet
adapter in :mod:`repro.experiments.adapters`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import derive_seed
from repro.policy.policy import Policy
from repro.policy.registry import make_control, make_governor, make_signal
from repro.telemetry.metrics import RunSummary

#: Scenario cells share the golden matrix's run configuration.
BASE_SEED = 1
TARGET_MEAN_W = 800.0
INITIAL_SOC = 0.55
DT_SECONDS = 5.0


@dataclass(frozen=True)
class PolicyDef:
    """One policy of a scenario, as registry names + a governor rule."""

    name: str
    signal: str
    governor: str
    control: str
    interval_s: float = 300.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A pinned plant configuration plus its policy overlays."""

    name: str
    controller: str
    workload: str
    weather: str
    policies: tuple[PolicyDef, ...]
    description: str


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="carbon-chasing",
            controller="insure",
            workload="seismic",
            weather="sunny",
            policies=(
                PolicyDef(
                    name="carbon-duty",
                    signal="carbon",
                    governor="step:420=80%:560=60%",
                    control="duty_cap",
                ),
            ),
            description=(
                "Cap the DVFS duty cycle when grid carbon intensity runs "
                "above its daily mean; batch compute chases the clean "
                "midday window."
            ),
        ),
        ScenarioSpec(
            name="price-arbitrage",
            controller="insure",
            workload="video",
            weather="sunny",
            policies=(
                PolicyDef(
                    name="price-vms",
                    signal="price",
                    governor="linear:20:48:max:40%",
                    control="vm_retarget",
                ),
            ),
            description=(
                "Ramp the VM target down as the day-ahead energy price "
                "climbs through the morning and evening demand peaks."
            ),
        ),
        ScenarioSpec(
            name="grid-hybrid",
            controller="insure",
            workload="seismic",
            weather="cloudy",
            policies=(
                PolicyDef(
                    name="carbon-duty",
                    signal="carbon",
                    governor="list:green=max:yellow=90%:red=70%:black=50%",
                    control="duty_cap",
                ),
                PolicyDef(
                    name="price-charge",
                    signal="price",
                    governor="step:30=70%:45=40%",
                    control="charge_current_cap",
                    interval_s=900.0,
                ),
            ),
            description=(
                "Grid-assisted hybrid: carbon zones cap compute duty while "
                "expensive-hour solar surplus is exported instead of "
                "stored (charge-current cap)."
            ),
        ),
    )
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_seed(name: str) -> int:
    """The pinned per-scenario seed (golden cells and fleet use the same)."""
    get_scenario(name)
    return derive_seed(BASE_SEED, "scenario", name)


def build_policy(pdef: PolicyDef, seed: int) -> Policy:
    """Instantiate one policy definition for a concrete site seed."""
    return Policy(
        name=pdef.name,
        signal=make_signal(pdef.signal, seed=seed),
        governor=make_governor(pdef.governor),
        control=make_control(pdef.control),
        interval_s=pdef.interval_s,
    )


def build_policies(name: str, seed: int) -> list[Policy]:
    """Instantiate every policy of scenario ``name`` for ``seed``."""
    return [build_policy(pdef, seed) for pdef in get_scenario(name).policies]


def run_scenario_cell(
    scenario: str,
    seed: int | None = None,
    initial_soc: float = INITIAL_SOC,
    dt: float = DT_SECONDS,
    target_mean_w: float = TARGET_MEAN_W,
    use_cache: bool = True,
) -> RunSummary:
    """One deterministic scenario run, memoised in the run cache.

    Module-level and picklable, so the runner can fan scenario sweeps out
    across processes; the fleet backend routes it through its own adapter
    (``fleet.scenarios.cell`` cache namespace).
    """
    from repro.core.system import build_system
    from repro.sim.cache import (
        cache_key,
        default_cache,
        summary_from_payload,
        summary_to_payload,
    )
    from repro.solar.traces import make_day_trace
    from repro.validate.golden import _make_workload

    spec = get_scenario(scenario)
    if seed is None:
        seed = scenario_seed(scenario)
    cache = default_cache() if use_cache else None
    key = None
    if cache is not None and cache.enabled:
        key = cache_key(
            "scenarios.run_scenario_cell",
            scenario=scenario,
            seed=seed,
            initial_soc=initial_soc,
            dt=dt,
            target_mean_w=target_mean_w,
        )
        cached = cache.get(key)
        if cached is not None:
            return summary_from_payload(cached)

    trace = make_day_trace(spec.weather, dt_seconds=dt, seed=seed,
                           target_mean_w=target_mean_w)
    system = build_system(
        trace,
        _make_workload(spec.workload),
        controller=spec.controller,
        seed=seed,
        initial_soc=initial_soc,
        dt=dt,
        policies=build_policies(scenario, seed),
    )
    summary = system.run()
    if cache is not None and key is not None:
        cache.put(key, summary_to_payload(summary))
    return summary
