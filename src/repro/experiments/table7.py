"""Table 7: legacy Xeon node versus low-power Core i7 node.

Runs each benchmark's measured iteration on both server profiles and
reports execution time, average power, and data processed per kWh per
node — the i7 improves energy efficiency by 5-15x even where it is not
faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.profiles import CORE_I7, XEON_DL380, ServerProfile
from repro.workloads.micro import MICRO_BENCHMARKS, MicroBenchmark

#: The benchmarks Table 7 reports, with the paper's per-iteration sizes.
TABLE7_BENCHMARKS: dict[str, float] = {"dedup": 2.6, "x264": 0.0056, "bayesian": 4.8}


@dataclass(frozen=True)
class Table7Row:
    """One (benchmark, server) measurement."""

    benchmark: str
    server: str
    data_gb: float
    exe_time_s: float
    avg_power_w: float

    @property
    def gb_per_kwh(self) -> float:
        """Data processed per unit of energy per node."""
        energy_kwh = self.avg_power_w * self.exe_time_s / 3.6e6
        return self.data_gb / energy_kwh


def _node_rate(benchmark: MicroBenchmark, profile: ServerProfile) -> float:
    """Whole-node GB/s: two VMs at the profile's speed factor."""
    speed = benchmark.speed_factors.get(profile.name, profile.relative_speed)
    return benchmark.gb_per_compute_second * speed * profile.vm_slots


def run_table7(
    benchmarks: dict[str, float] | None = None,
) -> list[Table7Row]:
    """All Table 7 rows (each benchmark on both server profiles)."""
    rows: list[Table7Row] = []
    for name, size_gb in (benchmarks or TABLE7_BENCHMARKS).items():
        try:
            benchmark = MICRO_BENCHMARKS[name]
        except KeyError:
            raise ValueError(f"unknown benchmark {name!r}") from None
        for profile in (XEON_DL380, CORE_I7):
            rate = _node_rate(benchmark, profile)
            exe_time = size_gb / rate
            utilisation = benchmark.cpu_share * profile.vm_slots
            power = profile.power_at(utilisation)
            rows.append(Table7Row(
                benchmark=name,
                server=profile.name,
                data_gb=size_gb,
                exe_time_s=exe_time,
                avg_power_w=power,
            ))
    return rows


def efficiency_gains(rows: list[Table7Row]) -> dict[str, float]:
    """Per-benchmark i7-over-Xeon energy-efficiency multiplier."""
    by_benchmark: dict[str, dict[str, Table7Row]] = {}
    for row in rows:
        by_benchmark.setdefault(row.benchmark, {})[row.server] = row
    gains = {}
    for name, pair in by_benchmark.items():
        gains[name] = pair["core-i7"].gb_per_kwh / pair["xeon-dl380"].gb_per_kwh
    return gains
