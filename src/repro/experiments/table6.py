"""Table 6: day-long operation logs, Opt vs No-Opt.

Three day archetypes (sunny 7.9 kWh, cloudy 5.9 kWh, rainy 3.0 kWh), each
run with the spatio-temporal optimisation (InSURE) and without it (the
unified-buffer baseline).  Each pair replays the same solar trace, just as
the authors replayed recorded traces through their charger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import build_system
from repro.experiments.runner import run_cells
from repro.sim.cache import (
    cache_key,
    default_cache,
    summary_from_payload,
    summary_to_payload,
)
from repro.solar.traces import DAY_ENERGY_KWH, table6_trace
from repro.telemetry.analyzer import table6_row
from repro.telemetry.metrics import RunSummary
from repro.workloads import SeismicAnalysis

_SCHEMES = (("Opt", "insure"), ("Non-Opt", "baseline"))


@dataclass
class Table6Cell:
    """One (day, scheme) cell with the paper's log-derived columns."""

    day: str
    scheme: str  # "Opt" or "Non-Opt"
    summary: RunSummary

    @property
    def row(self) -> dict[str, float | int]:
        return table6_row(self.summary)


def run_table6_cell(
    day: str,
    controller: str,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    use_cache: bool = True,
) -> RunSummary:
    """One day-long Table 6 run, memoised in the run cache (picklable)."""
    cache = default_cache() if use_cache else None
    key = None
    if cache is not None and cache.enabled:
        key = cache_key(
            "table6.cell",
            day=day,
            controller=controller,
            seed=seed,
            initial_soc=initial_soc,
            dt=dt,
        )
        cached = cache.get(key)
        if cached is not None:
            return summary_from_payload(cached)

    trace = table6_trace(day, dt_seconds=dt, seed=seed)
    system = build_system(
        trace,
        SeismicAnalysis(),
        controller=controller,
        seed=seed,
        initial_soc=initial_soc,
        dt=dt,
    )
    summary = system.run()
    if cache is not None and key is not None:
        cache.put(key, summary_to_payload(summary))
    return summary


def run_table6(
    days: tuple[str, ...] = ("sunny", "cloudy", "rainy"),
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    max_workers: int | None = None,
    use_cache: bool = True,
    backend: str | None = None,
) -> list[Table6Cell]:
    """All six Table 6 cells, fanned out across worker processes."""
    labels: list[tuple[str, str]] = []
    cells: list[dict] = []
    for day in days:
        if day not in DAY_ENERGY_KWH:
            raise ValueError(f"unknown day archetype {day!r}")
        for scheme, controller in _SCHEMES:
            labels.append((day, scheme))
            cells.append(dict(
                day=day,
                controller=controller,
                seed=seed,
                initial_soc=initial_soc,
                dt=dt,
                use_cache=use_cache,
            ))
    summaries = run_cells(run_table6_cell, cells, max_workers=max_workers,
                          backend=backend)
    return [
        Table6Cell(day=day, scheme=scheme, summary=summary)
        for (day, scheme), summary in zip(labels, summaries, strict=True)
    ]


def format_table6(cells: list[Table6Cell]) -> str:
    """Render the cells as the paper's table layout."""
    header = (
        f"{'Day':7s} {'Scheme':8s} {'Load kWh':>9s} {'Eff. kWh':>9s} "
        f"{'PwrCtrl':>8s} {'On/Off':>7s} {'VMCtrl':>7s} "
        f"{'MinV':>6s} {'EndV':>6s} {'Vsigma':>7s}"
    )
    lines = [header, "-" * len(header)]
    for cell in cells:
        r = cell.row
        lines.append(
            f"{cell.day:7s} {cell.scheme:8s} {r['load_kwh']:9.2f} "
            f"{r['effective_kwh']:9.2f} {r['power_ctrl_times']:8d} "
            f"{r['on_off_cycles']:7d} {r['vm_ctrl_times']:7d} "
            f"{r['min_battery_volt']:6.1f} {r['end_of_day_volt']:6.1f} "
            f"{r['battery_volt_sigma']:7.2f}"
        )
    return "\n".join(lines)
