"""Experiment runners — one per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function returning plain dataclasses or
dicts so that benchmarks, tests and examples share the exact same
experiment code.  See DESIGN.md's per-experiment index for the mapping.
"""

from repro.experiments.charging import (
    charging_time_hours,
    run_fig4a_charging,
    run_fig4b_discharge,
)
from repro.experiments.fixed_config import FixedConfigResult, run_fixed_config
from repro.experiments.fullsystem import run_fullsystem_comparison
from repro.experiments.micro_sweep import run_micro_sweep
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7

__all__ = [
    "FixedConfigResult",
    "charging_time_hours",
    "run_fig4a_charging",
    "run_fig4b_discharge",
    "run_fixed_config",
    "run_fullsystem_comparison",
    "run_micro_sweep",
    "run_table6",
    "run_table7",
]
