"""Adapters that route experiment cells onto the vectorized fleet kernel.

The ``fleet`` backend of :func:`repro.experiments.runner.run_cells` needs
to turn a cell — a kwargs mapping for a scalar, picklable cell function —
into a :class:`~repro.sim.fleet.kernel.SiteSpec`, and the kernel's summary
dict back into the :class:`~repro.telemetry.metrics.RunSummary` the caller
expects.  Each supported cell function registers a spec builder here,
keyed by its dotted name so this module never imports the experiment
modules at import time (they import the runner, which imports us lazily).

Fleet results are memoised in the same on-disk run cache as scalar cells
but under ``fleet.``-prefixed keys: the vectorized kernel is only
tolerance-equal to the scalar reference (see
:mod:`repro.sim.fleet.validator`), so its summaries must never replay as
scalar ones, and vice versa.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.sim.fleet import FleetUnsupported, require_numpy
from repro.sim.fleet.kernel import SiteSpec, simulate_fleet
from repro.telemetry.metrics import RunSummary


def _spec_fullsystem(cell: Mapping[str, Any]) -> tuple[SiteSpec, dict]:
    """repro.experiments.fullsystem.run_single."""
    from repro.solar.traces import make_day_trace

    controller = cell["controller"]
    workload = cell["workload_kind"]
    profile = cell["profile"]
    solar_mean_w = cell["solar_mean_w"]
    seed = cell.get("seed", 1)
    initial_soc = cell.get("initial_soc", 0.55)
    dt = cell.get("dt", 5.0)
    trace = make_day_trace(profile, dt_seconds=dt, seed=seed,
                           target_mean_w=solar_mean_w)
    spec = SiteSpec(
        controller=controller,
        workload=workload,
        seed=seed,
        initial_soc=initial_soc,
        trace_power_w=tuple(trace.power_w),
        trace_dt_s=dt,
        dt_s=dt,
    )
    key_params = dict(controller=controller, workload=workload,
                      profile=profile, solar_mean_w=solar_mean_w, seed=seed,
                      initial_soc=initial_soc, dt=dt)
    return spec, key_params


def _spec_table6(cell: Mapping[str, Any]) -> tuple[SiteSpec, dict]:
    """repro.experiments.table6.run_table6_cell."""
    from repro.solar.traces import table6_trace

    day = cell["day"]
    controller = cell["controller"]
    seed = cell.get("seed", 1)
    initial_soc = cell.get("initial_soc", 0.55)
    dt = cell.get("dt", 5.0)
    trace = table6_trace(day, dt_seconds=dt, seed=seed)
    spec = SiteSpec(
        controller=controller,
        workload="seismic",
        seed=seed,
        initial_soc=initial_soc,
        trace_power_w=tuple(trace.power_w),
        trace_dt_s=dt,
        dt_s=dt,
    )
    key_params = dict(day=day, controller=controller, seed=seed,
                      initial_soc=initial_soc, dt=dt)
    return spec, key_params


def _spec_provisioning(cell: Mapping[str, Any]) -> tuple[SiteSpec, dict]:
    """repro.experiments.provisioning.run_provisioning_cell."""
    from repro.experiments.provisioning import _day_and_night_trace

    battery_count = cell["battery_count"]
    solar_scale = cell["solar_scale"]
    seed = cell["seed"]
    mean_w = cell.get("mean_w", 900.0)
    trace = _day_and_night_trace(seed, mean_w * solar_scale)
    spec = SiteSpec(
        controller="insure",
        workload="video",
        seed=seed,
        initial_soc=0.55,
        trace_power_w=tuple(trace.power_w),
        trace_dt_s=trace.dt_seconds,
        battery_count=battery_count,
        dt_s=trace.dt_seconds,
    )
    key_params = dict(battery_count=battery_count, solar_scale=solar_scale,
                      seed=seed, mean_w=mean_w)
    return spec, key_params


def _spec_scenario(cell: Mapping[str, Any]) -> tuple[SiteSpec, dict]:
    """repro.experiments.scenarios.run_scenario_cell."""
    from repro.experiments.scenarios import get_scenario, scenario_seed
    from repro.solar.traces import make_day_trace

    scenario = cell["scenario"]
    try:
        spec = get_scenario(scenario)
    except ValueError as exc:
        raise FleetUnsupported(str(exc)) from None
    seed = cell.get("seed")
    if seed is None:
        seed = scenario_seed(scenario)
    initial_soc = cell.get("initial_soc", 0.55)
    dt = cell.get("dt", 5.0)
    target_mean_w = cell.get("target_mean_w", 800.0)
    trace = make_day_trace(spec.weather, dt_seconds=dt, seed=seed,
                           target_mean_w=target_mean_w)
    site = SiteSpec(
        controller=spec.controller,
        workload=spec.workload,
        seed=seed,
        initial_soc=initial_soc,
        trace_power_w=tuple(trace.power_w),
        trace_dt_s=dt,
        dt_s=dt,
        scenario=scenario,
    )
    key_params = dict(scenario=scenario, seed=seed, initial_soc=initial_soc,
                      dt=dt, target_mean_w=target_mean_w)
    return site, key_params


#: Dotted cell-function name -> (cache namespace, spec builder).
_ADAPTERS: dict[str, tuple[str, Callable[[Mapping[str, Any]],
                                         tuple[SiteSpec, dict]]]] = {
    "repro.experiments.fullsystem.run_single":
        ("fleet.fullsystem.run_single", _spec_fullsystem),
    "repro.experiments.table6.run_table6_cell":
        ("fleet.table6.cell", _spec_table6),
    "repro.experiments.provisioning.run_provisioning_cell":
        ("fleet.provisioning.cell", _spec_provisioning),
    "repro.experiments.scenarios.run_scenario_cell":
        ("fleet.scenarios.cell", _spec_scenario),
}


def _fn_name(fn: Callable[..., Any]) -> str:
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', '?')}"


def has_adapter(fn: Callable[..., Any]) -> bool:
    """Whether run_cells_fleet can route this cell function."""
    return _fn_name(fn) in _ADAPTERS


def run_cells_fleet(
    fn: Callable[..., Any], cells: Sequence[Mapping[str, Any]]
) -> list[RunSummary]:
    """Run every cell through the fleet kernel; results in input order.

    Raises :class:`FleetUnsupported` when the cell function has no
    adapter or any cell cannot be expressed as a :class:`SiteSpec`, and
    ``ImportError`` when numpy is unavailable — the runner treats both as
    routing signals back to the pool/serial path.
    """
    require_numpy()
    name = _fn_name(fn)
    if name not in _ADAPTERS:
        raise FleetUnsupported(f"no fleet adapter for cell function {name}")
    namespace, builder = _ADAPTERS[name]

    from repro.sim.cache import (
        cache_key,
        default_cache,
        summary_from_payload,
        summary_to_payload,
    )

    specs: list[SiteSpec] = []
    keys: list[str | None] = []
    results: list[RunSummary | None] = [None] * len(cells)
    pending: list[int] = []
    cache = default_cache()
    for index, cell in enumerate(cells):
        try:
            spec, key_params = builder(cell)
        except KeyError as exc:
            raise FleetUnsupported(
                f"cell #{index} missing parameter {exc} for {name}"
            ) from exc
        use_cache = bool(cell.get("use_cache", True)) and cache.enabled
        key = cache_key(namespace, **key_params) if use_cache else None
        if key is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = summary_from_payload(cached)
                continue
        specs.append(spec)
        keys.append(key)
        pending.append(index)

    if pending:
        summaries = simulate_fleet(specs)
        for index, key, summary in zip(pending, keys, summaries, strict=True):
            run = RunSummary(**summary)
            if key is not None:
                cache.put(key, summary_to_payload(run))
            results[index] = run
    return results  # type: ignore[return-value]
