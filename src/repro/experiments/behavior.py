"""Power-behaviour demonstrations (Figures 5, 14 and 16).

These experiments reproduce the paper's trace figures:

* Figure 5 — the unified buffer's failure mode: during a seismic run the
  whole bank switches out for protection and the in-situ system goes
  dark.
* Figure 14(a) — timely harvesting: the SPM prioritises low-SoC cabinets
  and charges them in budget-sized batches.
* Figure 14(b) — balanced usage: selective charging by aggregated
  discharge keeps per-cabinet wear even.
* Figure 16 — a full-day InSURE trace with the five characteristic
  regions (initial charging, MPPT power tracking, temporal capping,
  abundant-solar harvesting, fluctuation-induced mismatches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.system import InSituSystem, build_system
from repro.sim.rng import RandomStreams
from repro.solar.clouds import CloudField
from repro.solar.field import SolarField
from repro.solar.traces import make_day_trace, table6_trace
from repro.workloads import SeismicAnalysis, VideoSurveillance


@dataclass
class Fig5Result:
    """Unified-buffer switch-out demonstration."""

    system: InSituSystem
    switch_out_times: list[float]
    demand_before_w: float
    demand_after_w: float


def run_fig5_unified_switchout(seed: int = 3, hours: float = 4.0) -> Fig5Result:
    """Run the baseline on a seismic afternoon until the bank trips."""
    trace = make_day_trace("cloudy", dt_seconds=5.0, seed=seed, target_mean_w=380.0)
    system = build_system(trace, SeismicAnalysis(), controller="baseline",
                          seed=seed, initial_soc=0.6)
    system.run(hours * 3600.0)
    stops = [e.t for e in system.events.of_kind("load.checkpoint_stop")]
    rec = system.recorder
    demand = rec["demand_w"]
    t = rec["t"]
    if stops:
        stop_t = stops[0]
        before = demand[(t > stop_t - 1800) & (t <= stop_t)]
        after = demand[(t > stop_t + 600) & (t <= stop_t + 2400)]
        demand_before = float(before.mean()) if len(before) else 0.0
        demand_after = float(after.mean()) if len(after) else 0.0
    else:
        demand_before = demand_after = float(demand.mean())
    return Fig5Result(
        system=system,
        switch_out_times=stops,
        demand_before_w=demand_before,
        demand_after_w=demand_after,
    )


@dataclass
class Fig14aResult:
    """Charge prioritisation: order cabinets first enter charging."""

    system: InSituSystem
    charge_order: list[str]
    initial_socs: dict[str, float]


def run_fig14a_prioritisation(seed: int = 2) -> Fig14aResult:
    """SPM prioritises low-SoC cabinets when solar becomes abundant."""
    initial = [0.45, 0.55, 0.80]
    trace = make_day_trace("sunny", dt_seconds=5.0, seed=seed,
                           target_mean_w=1100.0)
    system = build_system(trace, VideoSurveillance(), controller="insure",
                          seed=seed, initial_socs=initial)
    system.run(6 * 3600.0)
    order: list[str] = []
    for event in system.events.of_kind("buffer.mode"):
        picked_by_spm = (
            event.data.get("to") == "charging"
            and event.data.get("reason") == "spm-select"
        )
        if picked_by_spm and event.source not in order:
            order.append(event.source)
    socs = {u.name: s for u, s in zip(system.bank, initial, strict=True)}
    return Fig14aResult(system=system, charge_order=order, initial_socs=socs)


@dataclass
class Fig14bResult:
    """Discharge balancing across cabinets over a full day."""

    insure_imbalance_ah: float
    baseline_imbalance_ah: float
    insure_per_unit_ah: list[float]


def run_fig14b_balancing(seed: int = 2) -> Fig14bResult:
    """InSURE keeps aggregated per-cabinet discharge nearly even."""
    results = {}
    for controller in ("insure", "baseline"):
        trace = table6_trace("sunny", seed=seed)
        system = build_system(trace, VideoSurveillance(), controller=controller,
                              seed=seed, initial_soc=0.55)
        system.run()
        results[controller] = system
    insure_bank = results["insure"].bank
    return Fig14bResult(
        insure_imbalance_ah=insure_bank.discharge_imbalance(),
        baseline_imbalance_ah=results["baseline"].bank.discharge_imbalance(),
        insure_per_unit_ah=[u.wear.discharge_ah for u in insure_bank],
    )


@dataclass
class Fig16Result:
    """Full-day trace with the five characteristic regions."""

    system: InSituSystem
    had_morning_charging: bool
    capping_events: int
    checkpoint_stops: int
    abundant_fraction: float
    mppt_tracking_std_w: float


def run_fig16_fullday(seed: int = 4) -> Fig16Result:
    """Day-long live-MPPT InSURE run exhibiting Regions A-E."""
    streams = RandomStreams(seed)
    clouds = CloudField.cloudy(streams.stream("fig16.clouds"))
    field = SolarField("solar", clouds)
    system = build_system(None, SeismicAnalysis(), controller="insure",
                          seed=seed, initial_soc=0.5, source=field)
    system.run(13 * 3600.0)

    rec = system.recorder
    solar = rec["solar_w"]
    demand = rec["demand_w"]
    third = max(1, len(solar) // 3)

    # Region A: cabinets enter charging during the first third of the day.
    first_third_s = (13 * 3600.0) / 3.0
    had_morning_charging = any(
        e.data.get("to") == "charging" and e.t <= first_third_s
        for e in system.events.of_kind("buffer.mode")
    )
    # Region C: temporal control — duty capping, or the stronger form,
    # VM checkpointing with server shutdown (the paper's Region C case).
    capping = system.events.count("power.duty")
    stops = len(system.events.of_kind("load.checkpoint_stop"))
    # Region D: abundant solar (solar exceeds demand).
    abundant = float(np.mean(solar > demand))
    # Region B/E: tracking ripple of the MPPT output.
    mid = solar[third: 2 * third]
    ripple = float(np.std(np.diff(mid))) if len(mid) > 2 else 0.0

    return Fig16Result(
        system=system,
        had_morning_charging=had_morning_charging,
        capping_events=capping,
        checkpoint_stops=stops,
        abundant_fraction=abundant,
        mppt_tracking_std_w=ripple,
    )
