"""Golden-trace regression harness.

Every cell of the controller × workload × weather experiment matrix is a
deterministic function of its configuration, so its simulation traces and
run summary can be *content-hashed* and pinned.  A golden record stores,
per cell:

* the exact configuration that produced it,
* a SHA-256 digest of every trace channel's raw float64 samples (any
  bit-level drift in the same-seed trajectory changes the digest),
* the :class:`~repro.telemetry.metrics.RunSummary` scalars rounded to a
  coarse tolerance (6 significant digits — figure-level resolution, so a
  digest diff always comes with human-readable "what moved" context),
* the invariant-checker verdict for the run.

Records live under ``tests/golden/`` (one JSON file per cell, sorted keys,
indented — reviewable in a diff).  ``pytest -m golden`` and the
``repro validate`` CLI subcommand recompute the matrix and compare;
``repro validate --refresh`` re-seeds the records after an *intentional*
behaviour change.

Cells are computed by a module-level picklable function so the matrix can
fan out through :func:`repro.experiments.runner.run_cells`; digests are
identical across worker counts by construction (each cell is seeded
independently via :func:`repro.experiments.runner.derive_seed`).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from repro.core.system import build_system
from repro.experiments.runner import derive_seed, run_cells
from repro.solar.traces import make_day_trace
from repro.telemetry.metrics import RunSummary
from repro.workloads import SeismicAnalysis, VideoSurveillance

#: The pinned experiment matrix.
CONTROLLERS = ("insure", "baseline")
WORKLOADS = ("video", "seismic")
WEATHERS = ("sunny", "cloudy", "rainy")

#: Fixed run configuration for every golden cell.
BASE_SEED = 1
TARGET_MEAN_W = 800.0
INITIAL_SOC = 0.55
DT_SECONDS = 5.0
#: One full simulated day: 17 280 ticks at dt=5 (the solar trace covers
#: the daylight window; the tail exercises night-time battery operation).
DURATION_S = 24 * 3600.0
#: Invariant-check stride used for golden runs.
CHECK_STRIDE = 12
#: Significant digits kept of each RunSummary scalar.  Far coarser than
#: float64 so incidental last-ulp wobble in derived statistics can never
#: flake the suite, yet well inside figure-level resolution.
SUMMARY_SIG_DIGITS = 6

#: Default location of the stored records (repository checkout layout).
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"


def cell_name(controller: str, workload: str, weather: str) -> str:
    return f"{controller}-{workload}-{weather}"


def scenario_cell_name(scenario: str) -> str:
    return f"scenario-{scenario}"


def matrix_cells() -> list[dict[str, str]]:
    """Keyword-argument cells for :func:`compute_cell`, in matrix order."""
    return [
        {"controller": controller, "workload": workload, "weather": weather}
        for controller in CONTROLLERS
        for workload in WORKLOADS
        for weather in WEATHERS
    ]


def scenario_cells() -> list[dict[str, str]]:
    """Keyword-argument cells for the policy scenario overlays."""
    from repro.experiments.scenarios import scenario_names

    return [{"scenario": name} for name in scenario_names()]


def all_cells() -> list[dict[str, str]]:
    """The full pinned set: the 12-cell matrix plus every scenario cell."""
    return matrix_cells() + scenario_cells()


def available_cell_ids() -> list[str]:
    """Every pinned cell id, in the CLI/manifest grammar: matrix cells as
    ``controller:workload:weather``, scenario cells as ``scenario-<name>``."""
    from repro.experiments.scenarios import scenario_names

    ids = [
        f"{cell['controller']}:{cell['workload']}:{cell['weather']}"
        for cell in matrix_cells()
    ]
    ids.extend(scenario_cell_name(name) for name in scenario_names())
    return ids


def _make_workload(kind: str):
    if kind == "video":
        return VideoSurveillance()
    if kind == "seismic":
        return SeismicAnalysis()
    raise ValueError(f"unknown workload kind {kind!r}")


def summary_fingerprint(summary: RunSummary) -> dict[str, Any]:
    """RunSummary scalars at coarse tolerance (stable across platforms)."""
    out: dict[str, Any] = {}
    for field, value in sorted(vars(summary).items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            out[field] = value
        elif isinstance(value, int):
            out[field] = value
        else:
            out[field] = float(f"{value:.{SUMMARY_SIG_DIGITS}g}")
    return out


def trace_digests(recorder) -> dict[str, str]:
    """SHA-256 of each channel's raw float64 samples (time axis included)."""
    arrays = recorder.as_dict()
    return {
        name: hashlib.sha256(arrays[name].tobytes()).hexdigest()
        for name in sorted(arrays)
    }


def _resolve_cell(
    controller: str | None,
    workload: str | None,
    weather: str | None,
    scenario: str | None,
):
    """Resolve a matrix or scenario cell into (name, plant axes, seed,
    policies, extra-config).  Scenario cells pull their plant axes from the
    :data:`~repro.experiments.scenarios.SCENARIOS` spec, derive their seed
    from the scenario name, and attach its policy overlays; matrix cells
    are unchanged (no policies, no extra config keys — the 12 pre-existing
    records stay byte-identical)."""
    if scenario is None:
        seed = derive_seed(BASE_SEED, controller, workload, weather)
        return (cell_name(controller, workload, weather),
                controller, workload, weather, seed, None, {})
    from repro.experiments.scenarios import (
        build_policies,
        get_scenario,
        scenario_seed,
    )

    spec = get_scenario(scenario)
    seed = scenario_seed(scenario)
    return (scenario_cell_name(scenario), spec.controller, spec.workload,
            spec.weather, seed, build_policies(scenario, seed),
            {"scenario": scenario})


def compute_cell(
    controller: str | None = None,
    workload: str | None = None,
    weather: str | None = None,
    check_invariants: bool = True,
    stride: int = CHECK_STRIDE,
    duration_s: float = DURATION_S,
    scenario: str | None = None,
) -> dict[str, Any]:
    """Run one golden cell and return its comparable record.

    Module-level and returning plain JSON-compatible data, so it can cross
    the :func:`~repro.experiments.runner.run_cells` process boundary.  The
    run cache is deliberately *not* consulted: digests cover full traces,
    which only a fresh simulation produces, and the checker must see every
    tick.  (Checker state also never feeds any cache key — see
    ``tests/validate/test_golden.py``.)

    Give either the three matrix axes or ``scenario=`` (a name from
    :mod:`repro.experiments.scenarios`), whose record is pinned under
    ``scenario-<name>.json``.
    """
    (name, controller, workload, weather, seed, policies,
     extra_config) = _resolve_cell(controller, workload, weather, scenario)
    trace = make_day_trace(weather, dt_seconds=DT_SECONDS, seed=seed,
                           target_mean_w=TARGET_MEAN_W)
    system = build_system(
        trace, _make_workload(workload), controller=controller, seed=seed,
        initial_soc=INITIAL_SOC, dt=DT_SECONDS,
        invariants=check_invariants, invariant_stride=stride,
        policies=policies,
    )
    summary = system.run(duration_s)
    record: dict[str, Any] = {
        "cell": name,
        "config": {
            "controller": controller,
            "workload": workload,
            "weather": weather,
            "seed": seed,
            "target_mean_w": TARGET_MEAN_W,
            "initial_soc": INITIAL_SOC,
            "dt": DT_SECONDS,
            "duration_s": duration_s,
            **extra_config,
        },
        "signals": trace_digests(system.recorder),
        "summary": summary_fingerprint(summary),
    }
    if check_invariants:
        checker = system.checker
        record["invariants"] = {
            "checks_run": checker.checks_run,
            "stride": stride,
            "violations": len(checker.violations),
            "first_violations": [str(v) for v in checker.violations[:10]],
        }
    return record


def compute_ledger_cell(
    controller: str | None = None,
    workload: str | None = None,
    weather: str | None = None,
    duration_s: float = DURATION_S,
    scenario: str | None = None,
) -> dict[str, Any]:
    """Run one golden cell with full observability and account its energy.

    Returns the cell's trace digests (so callers can prove the ledger and
    alert engine never perturbed the trajectory), the summary energy
    scalars, every ledger flow edge, the closure verdict, and the alert
    counts.  Module-level and JSON-compatible so the matrix fans out via
    :func:`~repro.experiments.runner.run_cells` — whose rollup folds the
    ``ledger_edges`` / ``alert_counts`` keys into the global registry.
    """
    from dataclasses import asdict

    from repro.obs.hub import Observability

    (name, controller, workload, weather, seed, policies,
     _extra) = _resolve_cell(controller, workload, weather, scenario)
    trace = make_day_trace(weather, dt_seconds=DT_SECONDS, seed=seed,
                           target_mean_w=TARGET_MEAN_W)
    obs = Observability()
    system = build_system(
        trace, _make_workload(workload), controller=controller, seed=seed,
        initial_soc=INITIAL_SOC, dt=DT_SECONDS, observability=obs,
        policies=policies,
    )
    summary = system.run(duration_s)
    return {
        "cell": name,
        "signals": trace_digests(system.recorder),
        "summary_energy": {
            "solar_energy_kwh": summary.solar_energy_kwh,
            "solar_used_kwh": summary.solar_used_kwh,
            "curtailed_kwh": summary.curtailed_kwh,
            "load_energy_kwh": summary.load_energy_kwh,
            "effective_energy_kwh": summary.effective_energy_kwh,
        },
        "ledger_edges": obs.ledger.edges(),
        "closure": asdict(obs.ledger.closure()),
        "alert_counts": obs.alerts.counts(),
    }


def compute_matrix(
    cells: Sequence[Mapping[str, str]] | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, Any]]:
    """Compute records for ``cells`` (default: the full matrix plus the
    scenario cells), keyed by cell name.  Fans out across processes via
    ``run_cells``."""
    cells = list(cells) if cells is not None else all_cells()
    records = run_cells(compute_cell, cells, max_workers=max_workers)
    return {record["cell"]: record for record in records}


# ----------------------------------------------------------------------
# Storage and comparison
# ----------------------------------------------------------------------
def record_path(name: str, golden_dir: Path | str = DEFAULT_GOLDEN_DIR) -> Path:
    return Path(golden_dir) / f"{name}.json"


def store_record(record: Mapping[str, Any],
                 golden_dir: Path | str = DEFAULT_GOLDEN_DIR) -> Path:
    """Write one golden record (stable formatting for reviewable diffs)."""
    path = record_path(record["cell"], golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_record(name: str,
                golden_dir: Path | str = DEFAULT_GOLDEN_DIR) -> dict[str, Any]:
    path = record_path(name, golden_dir)
    if not path.is_file():
        raise FileNotFoundError(
            f"no golden record {path}; seed it with `repro validate --refresh`"
        )
    return json.loads(path.read_text(encoding="utf-8"))


def diff_records(golden: Mapping[str, Any],
                 fresh: Mapping[str, Any]) -> list[str]:
    """Per-signal / per-metric differences, empty when the cell matches.

    Signal digests are opaque, so each mismatch is paired with the summary
    scalars that moved — the human-readable account of *what* changed.
    """
    diffs: list[str] = []
    golden_signals = golden.get("signals", {})
    fresh_signals = fresh.get("signals", {})
    for name in sorted(set(golden_signals) | set(fresh_signals)):
        expected = golden_signals.get(name)
        observed = fresh_signals.get(name)
        if expected != observed:
            diffs.append(
                f"signal {name}: digest {_short(expected)} -> {_short(observed)}"
            )
    golden_summary = golden.get("summary", {})
    fresh_summary = fresh.get("summary", {})
    for field in sorted(set(golden_summary) | set(fresh_summary)):
        expected = golden_summary.get(field)
        observed = fresh_summary.get(field)
        if expected != observed:
            diffs.append(f"summary {field}: {expected} -> {observed}")
    if golden.get("config") != fresh.get("config"):
        diffs.append(
            f"config: {golden.get('config')} -> {fresh.get('config')}"
        )
    return diffs


def _short(digest: str | None) -> str:
    return digest[:12] if digest else "<missing>"


def check_matrix(
    golden_dir: Path | str = DEFAULT_GOLDEN_DIR,
    cells: Sequence[Mapping[str, str]] | None = None,
    max_workers: int | None = None,
) -> dict[str, list[str]]:
    """Recompute ``cells`` and compare against stored records.

    Returns a mapping of cell name to its diff lines (including invariant
    violations reported as diffs); empty diff lists mean the cell matches.
    """
    results = compute_matrix(cells, max_workers=max_workers)
    report: dict[str, list[str]] = {}
    for name, fresh in sorted(results.items()):
        diffs: list[str] = []
        try:
            golden = load_record(name, golden_dir)
        except FileNotFoundError as exc:
            diffs.append(str(exc))
        else:
            diffs.extend(diff_records(golden, fresh))
        violations = fresh.get("invariants", {}).get("violations", 0)
        if violations:
            diffs.append(f"{violations} invariant violation(s): "
                         + "; ".join(fresh["invariants"]["first_violations"][:3]))
        report[name] = diffs
    return report


def invariant_sweep(
    duration_s: float = DURATION_S,
    cells: Sequence[Mapping[str, str]] | None = None,
    max_workers: int | None = None,
    stride: int = CHECK_STRIDE,
) -> dict[str, dict[str, Any]]:
    """Run the matrix at an arbitrary horizon under the invariant checker.

    Unlike :func:`check_matrix` this compares against *physics*, not
    pinned digests, so the horizon is free — the nightly CI job runs a
    36-hour sweep to exercise multi-day battery behaviour the 24-hour
    goldens cannot reach.  Returns each cell's invariant verdict.
    """
    sweep_cells = [
        dict(cell, duration_s=float(duration_s), stride=stride)
        for cell in (list(cells) if cells is not None else all_cells())
    ]
    records = run_cells(compute_cell, sweep_cells, max_workers=max_workers)
    return {record["cell"]: record["invariants"] for record in records}


def refresh_matrix(
    golden_dir: Path | str = DEFAULT_GOLDEN_DIR,
    cells: Sequence[Mapping[str, str]] | None = None,
    max_workers: int | None = None,
) -> list[Path]:
    """Recompute ``cells`` and (re)write their golden records."""
    results = compute_matrix(cells, max_workers=max_workers)
    return [store_record(record, golden_dir)
            for _, record in sorted(results.items())]
