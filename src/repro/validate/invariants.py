"""Physics-invariant checking for assembled systems.

The :class:`InvariantChecker` is an engine *observer*: registered via
:meth:`repro.sim.engine.Engine.observe`, it fires after every tick's
components have stepped and — once per check window — asserts the physical
laws the reproduction's credibility rests on:

* **DC-bus energy conservation** — the solar budget splits exactly into
  direct load service, charging power and curtailment, and the served load
  splits exactly into solar, battery and unserved shares (tight relative
  tolerance, with accumulated-error accounting over the whole run).
* **KiBaM well and SoC bounds** — both wells stay inside their physical
  capacity and total state of charge stays in [0, 1].
* **Charge acceptance** — no cabinet absorbs more current than its
  SoC-dependent acceptance ceiling allows.
* **Monotone Ah-throughput wear** — wear counters never decrease.
* **Relay exclusivity** — no cabinet is ever attached to the charge and
  discharge bus at the same time.
* **Non-negative power flows** — every bus flow is non-negative and the
  unserved share never exceeds the demand.

The checker only *reads* plant state; registering it (at any stride) never
perturbs the simulation, so same-seed traces hash identically with the
checker on or off.  Violations are recorded as structured
:class:`InvariantViolation` records (tick, component, observed/expected),
optionally raising :class:`InvariantError` at the offending tick.

Tolerances are documented with their rationale in ``docs/validation.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.bank import BatteryBank
from repro.power.relays import SwitchNetwork
from repro.sim.clock import Clock

#: Relative slack for per-tick bus-identity checks.  The bus resolves each
#: side of the identity with a handful of float64 additions, so genuine
#: rounding error is ~1e-13 relative; 1e-6 trips only on real model bugs.
REL_TOL = 1e-6
#: Absolute floor (watts) for bus-identity checks near zero power.
ABS_TOL_W = 1e-3
#: Floor (Wh) of the accumulated-residual account, so short runs cannot
#: trip on a handful of rounding residuals.
ACC_TOL_FLOOR_WH = 1e-3
#: Accumulated slack per simulated hour: half the per-tick absolute
#: tolerance, sustained.  Rounding residuals cancel (observed ~1e-14 Wh
#: per simulated day); a systematic leak — even one individually below
#: the per-tick gate — integrates linearly and trips this account.
ACC_TOL_WH_PER_H = 0.5 * ABS_TOL_W
#: Relative slack on the charge-acceptance ceiling: the ceiling is
#: evaluated at the post-step SoC, one tick after the charger clamped
#: against it, and acceptance tapers with SoC within the step.
ACCEPTANCE_REL_TOL = 1e-3
#: Slack (A) below which charge currents are ignored (float trickle).
ACCEPTANCE_ABS_TOL_A = 1e-6
#: Slack on SoC / normalised well-head bounds (dimensionless).
BOUNDS_TOL = 1e-9


class InvariantError(RuntimeError):
    """Raised when a physics invariant is violated (raise mode / assert)."""

    def __init__(self, message: str, violations: list["InvariantViolation"]):
        super().__init__(message)
        self.violations = violations


@dataclass(frozen=True)
class InvariantViolation:
    """One observed breach of a physics invariant."""

    tick: int
    t: float
    invariant: str
    component: str
    observed: float
    expected: float
    message: str

    def __str__(self) -> str:
        return (
            f"[tick {self.tick} t={self.t:.0f}s] {self.invariant} @ "
            f"{self.component}: {self.message} "
            f"(observed {self.observed:.9g}, expected {self.expected:.9g})"
        )


class InvariantChecker:
    """Engine observer asserting physical coherence of a running system.

    Parameters
    ----------
    bank / switchnet / plant:
        The assembled plant pieces to watch (see
        :func:`repro.core.system.build_system`).
    stride:
        Check once every ``stride`` ticks.  1 checks every tick; the
        default keeps full-run overhead low while still sampling every
        simulated minute at the standard ``dt=5`` step.
    raise_on_violation:
        Raise :class:`InvariantError` at the first offending tick instead
        of recording and continuing.
    max_violations:
        Stop recording beyond this many violations (the run itself
        continues); guards against megabyte-scale violation lists when a
        model is badly broken.
    """

    def __init__(
        self,
        bank: BatteryBank,
        switchnet: SwitchNetwork | None = None,
        plant=None,
        stride: int = 12,
        raise_on_violation: bool = False,
        max_violations: int = 1000,
    ) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.bank = bank
        self.switchnet = switchnet
        self.plant = plant
        self.stride = int(stride)
        self.raise_on_violation = raise_on_violation
        self.max_violations = max_violations
        self.violations: list[InvariantViolation] = []
        self.checks_run = 0
        #: Signed accumulated bus residual (Wh), solar side of the identity.
        self.accumulated_residual_wh = 0.0
        self._checked_seconds = 0.0
        #: Per-unit wear counters from the previous check window.
        self._wear_marks = {
            unit.name: (unit.wear.discharge_ah, unit.wear.charge_ah,
                        unit.wear.weighted_ah)
            for unit in bank
        }

    # ------------------------------------------------------------------
    # Observer protocol
    # ------------------------------------------------------------------
    def __call__(self, clock: Clock) -> None:
        if clock.step_index % self.stride:
            return
        self.checks_run += 1
        self._checked_seconds += clock.dt * self.stride
        tick = clock.step_index
        t = clock.t
        self._check_bus(tick, t, clock.dt)
        self._check_batteries(tick, t)
        self._check_relays(tick, t)

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def _check_bus(self, tick: int, t: float, dt: float) -> None:
        plant = self.plant
        report = getattr(plant, "last_report", None) if plant is not None else None
        if report is None:
            return

        for field_name in ("demand_w", "solar_available_w", "solar_to_load_w",
                           "battery_to_load_w", "unserved_w", "charge_power_w",
                           "curtailed_w"):
            value = getattr(report, field_name)
            if value < -ABS_TOL_W:
                self._record(tick, t, "nonnegative_flow", f"bus.{field_name}",
                             observed=value, expected=0.0,
                             message="power flow is negative")

        solar = report.solar_available_w
        solar_split = (report.solar_to_load_w + report.charge_power_w
                       + report.curtailed_w)
        tol = max(ABS_TOL_W, REL_TOL * max(solar, 1.0))
        residual = solar - solar_split
        self.accumulated_residual_wh += residual * dt * self.stride / 3600.0
        if abs(residual) > tol:
            self._record(tick, t, "energy_conservation", "bus.solar",
                         observed=solar_split, expected=solar,
                         message="PV input != load + charge + curtailment")

        demand = report.demand_w
        served_split = (report.solar_to_load_w + report.battery_to_load_w
                        + report.unserved_w)
        tol = max(ABS_TOL_W, REL_TOL * max(demand, 1.0))
        if abs(demand - served_split) > tol:
            self._record(tick, t, "energy_conservation", "bus.load",
                         observed=served_split, expected=demand,
                         message="demand != solar + battery + unserved")

        if report.unserved_w > demand + tol:
            self._record(tick, t, "nonnegative_flow", "bus.unserved_w",
                         observed=report.unserved_w, expected=demand,
                         message="unserved exceeds demand")

        acc_tol = max(ACC_TOL_FLOOR_WH, ACC_TOL_WH_PER_H
                      * self._checked_seconds / 3600.0)
        if abs(self.accumulated_residual_wh) > acc_tol:
            self._record(tick, t, "energy_conservation", "bus.accumulated",
                         observed=self.accumulated_residual_wh, expected=0.0,
                         message="accumulated bus residual drifting")

    def _check_batteries(self, tick: int, t: float) -> None:
        for unit in self.bank.units:
            kibam = self.kibam_of(unit)
            c = kibam.params.c
            capacity = kibam.capacity_ah
            y1_cap = c * capacity
            y2_cap = (1.0 - c) * capacity
            tol_ah = BOUNDS_TOL * capacity

            if not -tol_ah <= kibam.y1 <= y1_cap + tol_ah:
                self._record(tick, t, "well_bounds", f"{unit.name}.y1",
                             observed=kibam.y1, expected=y1_cap,
                             message="available well outside [0, c*C]")
            if not -tol_ah <= kibam.y2 <= y2_cap + tol_ah:
                self._record(tick, t, "well_bounds", f"{unit.name}.y2",
                             observed=kibam.y2, expected=y2_cap,
                             message="bound well outside [0, (1-c)*C]")
            soc = kibam.soc
            if not -BOUNDS_TOL <= soc <= 1.0 + BOUNDS_TOL:
                self._record(tick, t, "soc_bounds", unit.name,
                             observed=soc, expected=1.0,
                             message="state of charge outside [0, 1]")

            current = unit.last_current
            if current < -ACCEPTANCE_ABS_TOL_A:
                charge_amps = -current
                ceiling = unit.acceptance.max_current(soc)
                limit = ceiling * (1.0 + ACCEPTANCE_REL_TOL) + ACCEPTANCE_ABS_TOL_A
                if charge_amps > limit:
                    self._record(tick, t, "charge_acceptance", unit.name,
                                 observed=charge_amps, expected=ceiling,
                                 message="charge current above acceptance "
                                         "ceiling")

            marks = self._wear_marks[unit.name]
            wear = unit.wear
            now = (wear.discharge_ah, wear.charge_ah, wear.weighted_ah)
            for label, before, after in zip(
                ("discharge_ah", "charge_ah", "weighted_ah"), marks, now,
                strict=True,
            ):
                if after < before - 1e-12:
                    self._record(tick, t, "wear_monotone",
                                 f"{unit.name}.{label}",
                                 observed=after, expected=before,
                                 message="wear counter decreased")
            self._wear_marks[unit.name] = now

    def _check_relays(self, tick: int, t: float) -> None:
        if self.switchnet is None:
            return
        for name, pair in self.switchnet.pairs.items():
            if pair.charge.closed and pair.discharge.closed:
                self._record(tick, t, "relay_exclusivity", name,
                             observed=1.0, expected=0.0,
                             message="charge and discharge relays both "
                                     "closed")

    @staticmethod
    def kibam_of(unit):
        return unit.kibam

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _record(self, tick: int, t: float, invariant: str, component: str,
                observed: float, expected: float, message: str) -> None:
        violation = InvariantViolation(
            tick=tick, t=t, invariant=invariant, component=component,
            observed=observed, expected=expected, message=message,
        )
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        if self.raise_on_violation:
            raise InvariantError(str(violation), [violation])

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        """Violation counts grouped by invariant name."""
        grouped: dict[str, int] = {}
        for violation in self.violations:
            grouped[violation.invariant] = grouped.get(violation.invariant, 0) + 1
        return grouped

    def report(self, limit: int = 10) -> str:
        """Human-readable summary of the recorded violations."""
        if not self.violations:
            return (f"invariants ok ({self.checks_run} checks, accumulated "
                    f"bus residual {self.accumulated_residual_wh:+.3g} Wh)")
        lines = [f"{len(self.violations)} invariant violation(s) "
                 f"across {self.checks_run} checks:"]
        for invariant, count in sorted(self.counts().items()):
            lines.append(f"  {invariant}: {count}")
        lines.append("first violations:")
        lines.extend(f"  {v}" for v in self.violations[:limit])
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`InvariantError` if any violation was recorded."""
        if self.violations:
            raise InvariantError(self.report(), list(self.violations))
