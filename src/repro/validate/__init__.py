"""Correctness tooling: physics invariants and golden-trace regression.

Two layers of defence against silent drift:

* :mod:`repro.validate.invariants` — an engine observer asserting physical
  coherence (energy conservation, KiBaM bounds, charge acceptance, wear
  monotonicity, relay exclusivity) every check window of a running system.
* :mod:`repro.validate.golden` — content-hashed digests of same-seed
  simulation traces and summaries for the controller × workload × weather
  experiment matrix, compared by ``pytest -m golden`` and the
  ``repro validate`` CLI subcommand.

Only the invariant layer is imported here; :mod:`repro.validate.golden`
pulls in the full-system assembly, so import it explicitly where needed.
"""

from repro.validate.invariants import (
    InvariantChecker,
    InvariantError,
    InvariantViolation,
)

__all__ = ["InvariantChecker", "InvariantError", "InvariantViolation"]
