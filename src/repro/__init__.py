"""InSURE reproduction: sustainable in-situ server systems (ISCA 2015).

Subpackages
-----------
``repro.sim``
    Discrete-time simulation kernel.
``repro.battery`` / ``repro.solar`` / ``repro.power`` / ``repro.cluster``
    Plant substrates: energy buffer, PV supply, electrical plumbing,
    server cluster.
``repro.workloads``
    In-situ workload models (seismic batch, video stream, micro kernels).
``repro.core``
    The paper's contribution: spatio-temporal power management and the
    full-system assembly (:func:`repro.core.system.build_system`).
``repro.telemetry`` / ``repro.cost`` / ``repro.experiments``
    Measurement, economics, and per-table/figure experiment runners.
"""

__version__ = "1.0.0"
