"""Cost models: the economics of in-situ processing.

Analytic TCO models reproducing the paper's cost analyses:

* :mod:`repro.cost.transfer` — bulk data movement time and cost
  (Figure 1), including satellite and cellular links.
* :mod:`repro.cost.energy` — energy-source TCO: diesel generator, fuel
  cell, and PV + battery (Table 1, Figure 3b) plus the annual
  depreciation breakdown of Figure 22.
* :mod:`repro.cost.it` — IT-related TCO of in-situ versus
  transmit-everything deployments (Figure 3a).
* :mod:`repro.cost.scaleout` — scale-out versus cloud economics under
  varying sunshine fraction and data rates (Figures 23-24).
* :mod:`repro.cost.scenarios` — the five application scenarios of
  Figure 25 with their data rates, deployment lengths and savings.
"""

from repro.cost.energy import (
    DIESEL,
    FUEL_CELL,
    SOLAR_BATTERY,
    EnergySource,
    annual_depreciation,
    energy_tco,
)
from repro.cost.it import InSituCosts, TransmitCosts, it_tco_timeline
from repro.cost.scaleout import amortized_scaleout_cost, crossover_rate, tco_vs_data_rate
from repro.cost.scenarios import SCENARIOS, Scenario, scenario_savings
from repro.cost.transfer import (
    LINKS,
    aws_egress_cost_per_tb,
    transfer_cost_usd,
    transfer_hours_per_tb,
)

__all__ = [
    "DIESEL",
    "FUEL_CELL",
    "InSituCosts",
    "LINKS",
    "SCENARIOS",
    "SOLAR_BATTERY",
    "Scenario",
    "TransmitCosts",
    "EnergySource",
    "amortized_scaleout_cost",
    "annual_depreciation",
    "aws_egress_cost_per_tb",
    "crossover_rate",
    "energy_tco",
    "it_tco_timeline",
    "scenario_savings",
    "tco_vs_data_rate",
    "transfer_cost_usd",
    "transfer_hours_per_tb",
]
