"""Application-scenario cost analysis (Figure 25).

Five in-situ big-data scenarios with characteristic data rates and
deployment lengths; the bubble size in the paper's figure is the cost
saving of deploying InSURE versus the conventional send-it-out approach.

Each scenario carries its own deployment economics:

* *mobilization* — site setup and logistics (disaster response pays a
  rapid-deployment premium);
* hardware is amortized over a three-year life across campaigns, except
  that long deployments pay a wear surcharge (battery / disk
  replacements, the paper's "hardware replacement cost");
* the conventional alternative is a cellular backhaul to the cloud,
  except seismic campaigns which use mixed courier/satellite logistics
  at a bulk rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.scaleout import FULL_POD, MINI_POD, cloud_cost

#: Hardware amortization horizon across campaigns.
AMORTIZATION_YEARS = 3.0
#: Cloud compute cost per GB once the data arrives.
PROCESS_USD_PER_GB = 0.05


@dataclass(frozen=True)
class Scenario:
    """One deployment scenario from Figure 25."""

    key: str
    name: str
    data_rate_gb_day: float
    deployment_days: float
    #: Paper-reported savings range (for validating the reproduction).
    paper_savings_range: tuple[float, float]
    #: Site setup / logistics cost.
    mobilization_usd: float = 2_000.0
    #: Long deployments replace worn hardware (batteries, disks).
    hardware_replacement: bool = False
    #: Conventional-alternative transfer rate; None means cellular tariff.
    alt_usd_per_gb: float | None = None

    def __post_init__(self) -> None:
        if self.data_rate_gb_day <= 0 or self.deployment_days <= 0:
            raise ValueError("rate and deployment length must be positive")
        lo, hi = self.paper_savings_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError("savings range must be within [0, 1]")

    @property
    def years(self) -> float:
        return self.deployment_days / 365.0

    @property
    def total_gb(self) -> float:
        return self.data_rate_gb_day * self.deployment_days


SCENARIOS: dict[str, Scenario] = {
    "A": Scenario("A", "Seismic Analysis", data_rate_gb_day=230.0,
                  deployment_days=40.0, paper_savings_range=(0.47, 0.55),
                  alt_usd_per_gb=1.1),
    "B": Scenario("B", "Post-Earthquake Disaster Monitoring",
                  data_rate_gb_day=25.0, deployment_days=12.0,
                  paper_savings_range=(0.15, 0.15),
                  mobilization_usd=3_300.0),
    "C": Scenario("C", "Wildlife Behavior Study", data_rate_gb_day=52.0,
                  deployment_days=210.0, paper_savings_range=(0.77, 0.93),
                  hardware_replacement=True),
    "D": Scenario("D", "Coastal Monitoring", data_rate_gb_day=300.0,
                  deployment_days=400.0, paper_savings_range=(0.94, 0.95),
                  hardware_replacement=True),
    "E": Scenario("E", "Volcano Surveillance", data_rate_gb_day=500.0,
                  deployment_days=650.0, paper_savings_range=(0.94, 0.97),
                  hardware_replacement=True),
}


def scenario_insitu_cost(scenario: Scenario, sunshine_fraction: float = 0.7) -> float:
    """InSURE deployment cost for one scenario."""
    years = scenario.years
    if scenario.data_rate_gb_day <= MINI_POD.capacity_at(sunshine_fraction):
        pods, config = 1, MINI_POD
    else:
        capacity = FULL_POD.capacity_at(sunshine_fraction)
        pods, config = math.ceil(scenario.data_rate_gb_day / capacity), FULL_POD
    amortized_capex = config.capex_usd * min(years, AMORTIZATION_YEARS) / AMORTIZATION_YEARS
    cost = scenario.mobilization_usd + pods * (
        amortized_capex + config.annual_opex_usd * years
    )
    if scenario.hardware_replacement:
        cost *= 1.0 + 0.1 * years
    return cost


def scenario_alternative_cost(scenario: Scenario) -> float:
    """Conventional send-everything-out cost for one scenario."""
    if scenario.alt_usd_per_gb is not None:
        return scenario.total_gb * (scenario.alt_usd_per_gb + PROCESS_USD_PER_GB)
    return cloud_cost(scenario.data_rate_gb_day, years=scenario.years)


def scenario_savings(scenario: Scenario, sunshine_fraction: float = 0.7) -> float:
    """Cost saving fraction of InSURE versus the conventional approach."""
    alternative = scenario_alternative_cost(scenario)
    local = scenario_insitu_cost(scenario, sunshine_fraction)
    return max(0.0, 1.0 - local / alternative)


def all_scenario_savings(sunshine_fraction: float = 0.7) -> dict[str, float]:
    """Savings for every Figure 25 scenario."""
    return {
        key: scenario_savings(s, sunshine_fraction)
        for key, s in SCENARIOS.items()
    }
