"""Bulk data movement overheads (Figure 1).

Transfer *time* for 1 TB across typical link speeds (Figure 1a) and the
tiered AWS egress pricing of January 2014 (Figure 1b), plus the satellite
and cellular transmission costs of §2.1.
"""

from __future__ import annotations

#: Typical link speeds in megabits per second (Figure 1a's x-axis).
LINKS: dict[str, float] = {
    "T1 (1.5 Mbps)": 1.544,
    "10 Mbps": 10.0,
    "44.7 Mbps (T3)": 44.736,
    "100 Mbps": 100.0,
    "1 Gbps": 1000.0,
    "10 Gbps": 10000.0,
}

#: AWS data-transfer-out tiers as of January 2014: (up to TB, $/GB).
_AWS_TIERS: list[tuple[float, float]] = [
    (0.00977, 0.0),   # first 10 GB free
    (10.0, 0.12),
    (40.0, 0.09),
    (100.0, 0.07),
    (350.0, 0.05),
    (float("inf"), 0.03),
]

#: §2.1 transmission services.
SATELLITE_USD_PER_MB = 0.14
SATELLITE_MONTHLY_USD = 30_000.0
SATELLITE_HARDWARE_USD = 11_500.0
CELLULAR_USD_PER_GB = 10.0
CELLULAR_HARDWARE_USD = 1_000.0
#: Reference daily volume the $30k/month satellite plan is sized for.
SATELLITE_PLAN_GB_PER_DAY = 530.0


def satellite_plan_monthly_usd(gb_per_day: float) -> float:
    """Monthly satellite service cost for a committed daily volume.

    Satellite bandwidth is sold in sublinearly-priced tiers (a quarter of
    the bandwidth does not cost a quarter of the plan); we model the tier
    price as the reference plan scaled by the 1/4 power of the volume
    ratio, floored at a minimal service plan.
    """
    if gb_per_day <= 0:
        raise ValueError("gb_per_day must be positive")
    ratio = min(1.0, gb_per_day / SATELLITE_PLAN_GB_PER_DAY)
    return max(3_000.0, SATELLITE_MONTHLY_USD * ratio ** 0.25)


def transfer_hours_per_tb(mbps: float, efficiency: float = 0.8) -> float:
    """Hours to move 1 TB over a link of ``mbps`` at a given efficiency.

    Figure 1a: ranges from ~1 day at 100 Mbps to weeks on a T1.
    """
    if mbps <= 0:
        raise ValueError("mbps must be positive")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    bits = 1e12 * 8
    seconds = bits / (mbps * 1e6 * efficiency)
    return seconds / 3600.0


def aws_egress_cost_per_tb(total_tb: float) -> float:
    """Average $/TB for transferring ``total_tb`` out of AWS (Figure 1b)."""
    if total_tb <= 0:
        raise ValueError("total_tb must be positive")
    remaining = total_tb
    cost = 0.0
    prev_limit = 0.0
    for limit, per_gb in _AWS_TIERS:
        span = min(remaining, limit - prev_limit)
        if span <= 0:
            prev_limit = limit
            continue
        cost += span * 1000.0 * per_gb
        remaining -= span
        prev_limit = limit
        if remaining <= 0:
            break
    return cost / total_tb


def transfer_cost_usd(
    gb: float,
    medium: str,
    months: float = 1.0,
    include_hardware: bool = False,
) -> float:
    """Cost of moving ``gb`` of data over ``medium`` in {"satellite","cellular"}."""
    if gb < 0:
        raise ValueError("gb must be non-negative")
    if months <= 0:
        raise ValueError("months must be positive")
    if medium == "satellite":
        cost = gb * 1000.0 * SATELLITE_USD_PER_MB
        if include_hardware:
            cost += SATELLITE_HARDWARE_USD
        return cost
    if medium == "cellular":
        cost = gb * CELLULAR_USD_PER_GB
        if include_hardware:
            cost += CELLULAR_HARDWARE_USD
        return cost
    raise ValueError(f"unknown medium {medium!r}")
