"""Energy-source TCO (Table 1, Figure 3b, Figure 22).

Parameters follow Table 1 of the paper:

* Diesel generator: $370/kW CapEx, 5-year lifetime, $0.40/kWh fuel.
* Fuel cells: $5/W CapEx, FC stack life 5 years (full system 10),
  $0.16/kWh natural gas.
* Solar + battery: panels $2/W (25-year life), batteries $2/Ah with a
  4-year life; no fuel.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergySource:
    """One on-site generation option.

    Attributes
    ----------
    name:
        Display name.
    capex_usd_per_kw:
        Up-front cost per kW of capacity.
    replacement_years:
        How often the CapEx recurs (equipment lifetime).
    opex_usd_per_kwh:
        Fuel / consumables per kWh generated.
    """

    name: str
    capex_usd_per_kw: float
    replacement_years: float
    opex_usd_per_kwh: float

    def __post_init__(self) -> None:
        if self.capex_usd_per_kw < 0 or self.opex_usd_per_kwh < 0:
            raise ValueError("costs must be non-negative")
        if self.replacement_years <= 0:
            raise ValueError("replacement_years must be positive")


DIESEL = EnergySource("diesel", capex_usd_per_kw=370.0, replacement_years=5.0,
                      opex_usd_per_kwh=0.40)
FUEL_CELL = EnergySource("fuel-cell", capex_usd_per_kw=5000.0,
                         replacement_years=5.0, opex_usd_per_kwh=0.16)
#: PV panels at $2/W plus battery bank depreciation folded into OpEx below.
SOLAR_BATTERY = EnergySource("solar-battery", capex_usd_per_kw=2000.0,
                             replacement_years=25.0, opex_usd_per_kwh=0.0)

#: Battery bank of the prototype: 210 Ah at $2/Ah, 4-year life.
BATTERY_BANK_AH = 210.0
BATTERY_USD_PER_AH = 2.0
BATTERY_LIFE_YEARS = 4.0


def energy_tco(
    source: EnergySource,
    years: float,
    capacity_kw: float = 1.6,
    kwh_per_year: float = 3500.0,
    include_battery: bool | None = None,
) -> float:
    """Cumulative energy-related cost after ``years`` (Figure 3b).

    CapEx recurs at each equipment replacement; the solar option adds
    battery-bank replacements every four years.
    """
    if years <= 0:
        raise ValueError("years must be positive")
    if capacity_kw <= 0:
        raise ValueError("capacity_kw must be positive")
    if kwh_per_year < 0:
        raise ValueError("kwh_per_year must be non-negative")
    import math

    replacements = math.ceil(years / source.replacement_years)
    capex = replacements * source.capex_usd_per_kw * capacity_kw
    opex = source.opex_usd_per_kwh * kwh_per_year * years
    battery = 0.0
    wants_battery = include_battery if include_battery is not None else (
        source.name == "solar-battery"
    )
    if wants_battery:
        battery_replacements = math.ceil(years / BATTERY_LIFE_YEARS)
        battery = battery_replacements * BATTERY_BANK_AH * BATTERY_USD_PER_AH
    return capex + opex + battery


#: Figure 22 component costs (USD, annual depreciation for the prototype).
_DEPRECIATION_COMMON: dict[str, float] = {
    "server": 1600.0,
    "cellular": 240.0,
    "hvac": 260.0,
    "pdu": 110.0,
    "switch": 140.0,
    "maintenance": 420.0,
}

_DEPRECIATION_BY_SOURCE: dict[str, dict[str, float]] = {
    "InSURE": {"battery": 315.0, "pv_panels": 210.0, "inverter": 70.0},
    "DG": {"generator": 370.0, "fuel": 850.0},
    "FC": {"generator": 1200.0, "fuel": 220.0},
}


def annual_depreciation(system: str = "InSURE") -> dict[str, float]:
    """Annual depreciation breakdown per Figure 22.

    Returns component -> USD/year.  DG adds ~20 % over InSURE and FC ~24 %,
    matching §6.5.
    """
    try:
        specific = _DEPRECIATION_BY_SOURCE[system]
    except KeyError:
        raise ValueError(
            f"unknown system {system!r}; expected one of "
            f"{sorted(_DEPRECIATION_BY_SOURCE)}"
        ) from None
    breakdown = dict(_DEPRECIATION_COMMON)
    breakdown.update(specific)
    return breakdown


def annual_depreciation_total(system: str = "InSURE") -> float:
    return sum(annual_depreciation(system).values())
