"""IT-related TCO: in-situ versus transmit-everything (Figure 3a).

The paper's §2.1 comparison: send all raw data to a remote data centre
over satellite or cellular, versus pre-process locally (deduplicate,
compress, filter) and transmit only the reduced output over the same
medium as backup/uplink.  In-situ cuts >55 % of OpEx with a satellite
backhaul and ~95 % with cellular, saving over a million dollars in five
years.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.transfer import (
    CELLULAR_HARDWARE_USD,
    SATELLITE_HARDWARE_USD,
    satellite_plan_monthly_usd,
    transfer_cost_usd,
)

#: The prototype's workload: 114 GB twice daily plus the camera stream.
DEFAULT_DAILY_GB = 2 * 114.0 + 0.21 * 60 * 24


@dataclass(frozen=True)
class TransmitCosts:
    """Transmit-everything deployment over a given medium."""

    medium: str  # "satellite" or "cellular"
    daily_gb: float = DEFAULT_DAILY_GB

    def cumulative_usd(self, years: float) -> float:
        if years <= 0:
            raise ValueError("years must be positive")
        months = years * 12.0
        total_gb = self.daily_gb * 365.0 * years
        if self.medium == "satellite":
            # Satellite service is sold as a monthly plan sized for the
            # committed daily volume.
            return SATELLITE_HARDWARE_USD + satellite_plan_monthly_usd(
                self.daily_gb
            ) * months
        return CELLULAR_HARDWARE_USD + transfer_cost_usd(total_gb, self.medium)


@dataclass(frozen=True)
class InSituCosts:
    """In-situ pre-processing deployment with a reduced uplink."""

    backup_medium: str  # "satellite" or "cellular"
    daily_gb: float = DEFAULT_DAILY_GB
    #: Fraction of raw data still sent upstream after pre-processing.
    reduction_to: float = 0.03
    #: One-time system cost: servers, PV, batteries, networking (prototype).
    system_capex_usd: float = 28_000.0
    #: Annual maintenance + replacement provisioning.
    annual_opex_usd: float = 3_500.0

    def cumulative_usd(self, years: float) -> float:
        if years <= 0:
            raise ValueError("years must be positive")
        reduced_daily = self.daily_gb * self.reduction_to
        if self.backup_medium == "satellite":
            uplink = SATELLITE_HARDWARE_USD + satellite_plan_monthly_usd(
                reduced_daily
            ) * years * 12.0
        else:
            uplink = transfer_cost_usd(reduced_daily * 365.0 * years,
                                       self.backup_medium,
                                       include_hardware=True)
        return self.system_capex_usd + self.annual_opex_usd * years + uplink


def it_tco_timeline(years: tuple[int, ...] = (1, 2, 3, 4, 5)) -> dict[str, list[float]]:
    """Figure 3a's four curves, in thousands of dollars."""
    rows: dict[str, list[float]] = {
        "Satellite(SA)": [],
        "Cellular(4G)": [],
        "InSitu + SA": [],
        "InSitu + 4G": [],
    }
    for y in years:
        rows["Satellite(SA)"].append(TransmitCosts("satellite").cumulative_usd(y) / 1000.0)
        rows["Cellular(4G)"].append(TransmitCosts("cellular").cumulative_usd(y) / 1000.0)
        rows["InSitu + SA"].append(InSituCosts("satellite").cumulative_usd(y) / 1000.0)
        rows["InSitu + 4G"].append(InSituCosts("cellular").cumulative_usd(y) / 1000.0)
    return rows
