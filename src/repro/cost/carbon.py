"""Carbon footprint of in-situ power options.

The paper's sustainability argument is qualitative ("less carbon
emissions", "cap the significant IT carbon footprint"); this module makes
it quantitative with standard lifecycle emission factors so the energy
options of Figure 3(b)/22 can also be compared in kg CO2.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Lifecycle emission factors.
DIESEL_KG_PER_LITRE = 2.68
DIESEL_LITRES_PER_KWH = 0.45
NATURAL_GAS_KG_PER_KWH = 0.23      # fuel-cell feedstock, combustion basis
GRID_KG_PER_KWH = 0.45             # U.S. average grid intensity
SOLAR_LIFECYCLE_KG_PER_KWH = 0.045
BATTERY_EMBODIED_KG_PER_KWH_CAP = 65.0  # lead-acid manufacturing, recycled


@dataclass(frozen=True)
class CarbonFootprint:
    """Annual footprint of one power option, kg CO2 per year."""

    source: str
    operational_kg: float
    embodied_kg: float

    @property
    def total_kg(self) -> float:
        return self.operational_kg + self.embodied_kg


def diesel_footprint(kwh_per_year: float) -> CarbonFootprint:
    """Diesel generator: combustion dominates."""
    if kwh_per_year < 0:
        raise ValueError("kwh_per_year must be non-negative")
    litres = kwh_per_year * DIESEL_LITRES_PER_KWH
    return CarbonFootprint("diesel", operational_kg=litres * DIESEL_KG_PER_LITRE,
                           embodied_kg=30.0)


def fuel_cell_footprint(kwh_per_year: float) -> CarbonFootprint:
    """Natural-gas fuel cell: cleaner combustion, still fossil."""
    if kwh_per_year < 0:
        raise ValueError("kwh_per_year must be non-negative")
    return CarbonFootprint(
        "fuel-cell",
        operational_kg=kwh_per_year * NATURAL_GAS_KG_PER_KWH,
        embodied_kg=120.0,
    )


def insure_footprint(
    kwh_per_year: float,
    battery_capacity_kwh: float = 5.04,
    battery_life_years: float = 4.0,
) -> CarbonFootprint:
    """Solar + battery: lifecycle panel emissions plus battery embodied."""
    if kwh_per_year < 0:
        raise ValueError("kwh_per_year must be non-negative")
    if battery_capacity_kwh <= 0 or battery_life_years <= 0:
        raise ValueError("battery parameters must be positive")
    battery_annual = (
        battery_capacity_kwh * BATTERY_EMBODIED_KG_PER_KWH_CAP / battery_life_years
    )
    return CarbonFootprint(
        "insure",
        operational_kg=kwh_per_year * SOLAR_LIFECYCLE_KG_PER_KWH,
        embodied_kg=battery_annual,
    )


def grid_footprint(kwh_per_year: float) -> CarbonFootprint:
    """The grid-tied comparison the paper's rural sites cannot even have."""
    if kwh_per_year < 0:
        raise ValueError("kwh_per_year must be non-negative")
    return CarbonFootprint("grid", operational_kg=kwh_per_year * GRID_KG_PER_KWH,
                           embodied_kg=0.0)


def annual_comparison(kwh_per_year: float = 3500.0) -> dict[str, CarbonFootprint]:
    """All options side by side for one prototype-scale installation."""
    return {
        fp.source: fp
        for fp in (
            insure_footprint(kwh_per_year),
            fuel_cell_footprint(kwh_per_year),
            diesel_footprint(kwh_per_year),
            grid_footprint(kwh_per_year),
        )
    }
