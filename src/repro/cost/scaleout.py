"""Scale-out versus cloud economics (Figures 23 and 24).

Figure 23: in places with a lower sunshine fraction, a pod's average
throughput falls, so meeting a fixed processing demand requires scaling
the installation out; even so the amortized annual cost beats shipping
raw data to a cloud over a broadband link.

Figure 24: total cost of ownership over a deployment versus the local
data generation rate, for a *remote* site whose only backhaul is
cellular.  Below ~0.9 GB/day the cloud is cheaper (the in-situ CapEx
dominates); as the rate grows, transmission costs explode and in-situ
yields up to ~96 % savings at 0.5 TB/day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.transfer import transfer_cost_usd


@dataclass(frozen=True)
class PodConfig:
    """One InSURE installation size."""

    name: str
    capex_usd: float
    annual_opex_usd: float
    #: Daily processing capability at 100 % sunshine fraction.
    capacity_gb_per_day: float

    def capacity_at(self, sunshine_fraction: float) -> float:
        if not 0.0 < sunshine_fraction <= 1.0:
            raise ValueError("sunshine_fraction must be in (0, 1]")
        return self.capacity_gb_per_day * sunshine_fraction

    def tco(self, years: float) -> float:
        if years <= 0:
            raise ValueError("years must be positive")
        return self.capex_usd + self.annual_opex_usd * years


#: The full prototype: 4 servers behind a 1.6 kW array.
FULL_POD = PodConfig("full", capex_usd=28_000.0, annual_opex_usd=3_500.0,
                     capacity_gb_per_day=260.0)
#: A single-server pod for light data rates.
MINI_POD = PodConfig("mini", capex_usd=8_000.0, annual_opex_usd=800.0,
                     capacity_gb_per_day=60.0)

#: Figure 23's cloud comparison assumes a broadband site: egress at bulk
#: rates plus cloud compute, storage and operations, ~$0.26/GB all-in.
CLOUD_BROADBAND_USD_PER_GB = 0.26
#: Cloud compute + storage per GB at a *remote* (cellular) site — the
#: transfer itself is costed separately through the cellular tariff.
CLOUD_PROCESS_USD_PER_GB = 0.05

#: Figure 23's fixed processing demand and Figure 24's default horizon.
FIG23_DATA_RATE_GB_DAY = 240.0
DEFAULT_YEARS = 3.0

#: Annual amortized cost of one full pod (Figure 22 depreciation + OpEx).
FULL_POD_ANNUAL_AMORTIZED = 6_900.0


def pods_required(data_rate_gb_day: float, sunshine_fraction: float) -> int:
    """Full pods needed to sustain ``data_rate_gb_day``."""
    if data_rate_gb_day <= 0:
        raise ValueError("data_rate_gb_day must be positive")
    capacity = FULL_POD.capacity_at(sunshine_fraction)
    return max(1, math.ceil(data_rate_gb_day / capacity))


def amortized_scaleout_cost(
    sunshine_fraction: float,
    data_rate_gb_day: float = FIG23_DATA_RATE_GB_DAY,
) -> float:
    """Figure 23 "Scaling Out Server" bars: amortized USD per year."""
    pods = pods_required(data_rate_gb_day, sunshine_fraction)
    return pods * FULL_POD_ANNUAL_AMORTIZED


def amortized_cloud_cost(data_rate_gb_day: float = FIG23_DATA_RATE_GB_DAY) -> float:
    """Figure 23 "Relying on Cloud" bar: amortized USD per year."""
    if data_rate_gb_day <= 0:
        raise ValueError("data_rate_gb_day must be positive")
    return data_rate_gb_day * 365.0 * CLOUD_BROADBAND_USD_PER_GB


def cloud_cost(
    data_rate_gb_day: float,
    years: float = DEFAULT_YEARS,
    medium: str = "cellular",
) -> float:
    """Remote-site cloud TCO (Figure 24): ship raw data out, process it."""
    if data_rate_gb_day <= 0:
        raise ValueError("data_rate_gb_day must be positive")
    total_gb = data_rate_gb_day * 365.0 * years
    transfer = transfer_cost_usd(total_gb, medium, include_hardware=True)
    return transfer + total_gb * CLOUD_PROCESS_USD_PER_GB


def insitu_cost(
    data_rate_gb_day: float,
    sunshine_fraction: float = 1.0,
    years: float = DEFAULT_YEARS,
) -> float:
    """In-situ TCO at a given data rate (Figure 24 curves).

    Chooses the cheapest pod mix: a mini pod when it suffices, otherwise
    however many full pods the demand requires.
    """
    if data_rate_gb_day <= 0:
        raise ValueError("data_rate_gb_day must be positive")
    if data_rate_gb_day <= MINI_POD.capacity_at(sunshine_fraction):
        return MINI_POD.tco(years)
    return pods_required(data_rate_gb_day, sunshine_fraction) * FULL_POD.tco(years)


def tco_vs_data_rate(
    rates_gb_day: tuple[float, ...] = (0.5, 5.0, 50.0, 500.0),
    sunshine_fractions: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4),
    years: float = DEFAULT_YEARS,
) -> dict[str, list[float]]:
    """Figure 24's curve family: cloud plus one in-situ curve per SSF."""
    curves: dict[str, list[float]] = {
        "cloud": [cloud_cost(r, years) for r in rates_gb_day]
    }
    for ssf in sunshine_fractions:
        curves[f"insitu-{int(ssf * 100)}%"] = [
            insitu_cost(r, ssf, years) for r in rates_gb_day
        ]
    return curves


def crossover_rate(
    sunshine_fraction: float = 1.0,
    years: float = DEFAULT_YEARS,
    lo: float = 0.05,
    hi: float = 50.0,
) -> float:
    """Data rate (GB/day) where in-situ and cloud TCO intersect.

    The paper reports ~0.9 GB/day for the prototype.  Geometric bisection
    on the cost difference; raises if the bracket does not straddle a
    crossover.
    """
    def diff(rate: float) -> float:
        return insitu_cost(rate, sunshine_fraction, years) - cloud_cost(rate, years)

    if diff(lo) <= 0 or diff(hi) >= 0:
        raise ValueError("bracket does not straddle the crossover")
    for _ in range(80):
        mid = math.sqrt(lo * hi)
        if diff(mid) > 0:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)
