"""Control methods: how a capacity limit is applied to the plant.

The second half of EcoFreq's decomposition: a :class:`ControlMethod`
receives the governor's capacity fraction and turns exactly one knob —

* :class:`DutyCapControl` — upper-bounds the rack DVFS duty cycle
  (quantized to tenths, matching the fleet kernel's deci-int duty state);
* :class:`VmRetargetControl` — upper-bounds the VM target as a fraction
  of the workload's preferred count;
* :class:`CheckpointShedControl` — checkpoint-and-stop when the limit
  collapses to (near) zero, re-arming once it recovers;
* :class:`ChargeCurrentCapControl` — scales the solar charge budget via
  :attr:`repro.battery.charger.SolarCharger.cap_fraction`.

Contract (enforced by ``tests/policy/conformance.py``): ``apply`` clamps
to hardware bounds, is idempotent (re-applying the same fraction is a
no-op that emits no event), and records a decision event whenever it
changes actuated state.

The module also hosts the :func:`nudge_duty` / :func:`nudge_vm_target`
stepping primitives the TPM actuates through — shared verbatim with the
pre-refactor controller math (the float expressions are identical, which
is what keeps the 12 golden cells bit-exact).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotations only; keeps policy importable standalone
    from repro.battery.charger import SolarCharger
    from repro.core.controller_base import PowerManager

#: Hardware duty quantum: racks actuate DVFS in tenths, and the fleet
#: kernel stores duty as a deci int — caps snap *down* to this grid.
DUTY_QUANTUM = 0.1


def quantize_duty(fraction: float) -> float:
    """Snap a capacity fraction down to the duty grid, clamped to [0, 1].

    Floor (not round): a cap may never exceed what the governor granted.
    The epsilon absorbs representation error in fractions like 0.7 so the
    scalar float path and the fleet's deci-int path agree on every grid
    point.
    """
    fraction = min(1.0, max(0.0, fraction))
    return math.floor(fraction * 10.0 + 1e-9) / 10.0


def nudge_duty(duty: float, direction: int, step: float,
               floor: float = 0.5, ceiling: float = 1.0) -> float:
    """One duty-cycle actuation step (Figure 11's D_last ± 1).

    ``direction`` < 0 caps, > 0 relaxes, 0 holds.  The expressions are
    the TPM originals, token for token — bit-exactness of the golden
    matrix depends on the ``round(..., 3)`` and clamp order.
    """
    if direction < 0:
        return max(floor, round(duty - step, 3))
    if direction > 0:
        return min(ceiling, round(duty + step, 3))
    return duty


def nudge_vm_target(target: int, direction: int, step: int,
                    preferred: int) -> int:
    """One VM-count actuation step (Figure 11's N_vm ± 1)."""
    if direction < 0:
        return max(0, target - step)
    if direction > 0:
        return min(preferred, target + step)
    return target


class ControlMethod:
    """Base class for limit applicators.

    ``bind`` wires plant references (the power manager, and the solar
    charger for supply-side controls); ``apply`` pushes one capacity
    fraction and returns True when actuated state changed.
    """

    #: Registry name (``control=`` token in scenario definitions).
    name = "control"

    def __init__(self) -> None:
        self._manager: PowerManager | None = None
        self._charger: SolarCharger | None = None
        #: Decision-event source label; the owning Policy overwrites this
        #: with its own name so events attribute to the policy, not the
        #: mechanism.
        self.source = type(self).__name__

    def bind(self, manager: PowerManager,
             charger: SolarCharger | None = None) -> None:
        self._manager = manager
        self._charger = charger

    def apply(self, fraction: float, t: float) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class DutyCapControl(ControlMethod):
    """Cap the rack DVFS duty cycle at ``fraction`` (quantized to tenths).

    The cap only ever *lowers* duty; the controller's own TPM stepping
    raises it back once the governor relaxes, so the two write the same
    knob without fighting.
    """

    name = "duty_cap"

    def __init__(self, duty_min: float = DUTY_QUANTUM) -> None:
        super().__init__()
        #: Lowest cap this control will set; never below the hardware
        #: quantum — servers reject duty 0 (shedding load entirely is
        #: CheckpointShedControl's job, not a DVFS setting).
        self.duty_min = max(float(duty_min), DUTY_QUANTUM)
        self._last_cap: float | None = None

    def apply(self, fraction: float, t: float) -> bool:
        cap = max(self.duty_min, quantize_duty(fraction))
        manager = self._manager
        self._last_cap = cap
        if manager.duty <= cap:
            return False
        manager.decisions.record(t, "dvfs.duty", self.source,
                                 from_duty=manager.duty, to_duty=cap,
                                 action="policy-cap")
        manager.duty = cap
        manager.rack.set_duty(cap, t)
        return True


class VmRetargetControl(ControlMethod):
    """Cap the VM target at ``floor(fraction * preferred)`` instances."""

    name = "vm_retarget"

    def apply(self, fraction: float, t: float) -> bool:
        manager = self._manager
        preferred = manager.workload.preferred_vms
        fraction = min(1.0, max(0.0, fraction))
        cap = min(preferred, int(math.floor(fraction * preferred + 1e-9)))
        if manager.vm_target <= cap:
            return False
        manager.vm_target = cap
        manager.allocator.set_target(cap, t)
        manager.decisions.record(t, "vm.target", self.source,
                                 target=cap, reason="policy-cap")
        return True


class CheckpointShedControl(ControlMethod):
    """Checkpoint-and-stop the load when the limit collapses.

    Fires once when the fraction drops to ``shed_below`` or less, then
    stays quiet until the fraction recovers past ``rearm_above`` —
    hysteresis that makes repeated application idempotent by design.
    """

    name = "checkpoint_shed"

    def __init__(self, shed_below: float = 0.05,
                 rearm_above: float = 0.25) -> None:
        if rearm_above <= shed_below:
            raise ValueError("rearm_above must exceed shed_below")
        super().__init__()
        self.shed_below = float(shed_below)
        self.rearm_above = float(rearm_above)
        self._armed = True

    def apply(self, fraction: float, t: float) -> bool:
        manager = self._manager
        if fraction <= self.shed_below:
            if not self._armed:
                return False
            self._armed = False
            manager.checkpoint_and_stop(t, reason="policy-shed")
            if hasattr(manager, "vm_target"):
                manager.vm_target = 0
            if hasattr(manager, "checkpoint_stops"):
                manager.checkpoint_stops += 1
            return True
        if fraction >= self.rearm_above:
            self._armed = True
        return False


class ChargeCurrentCapControl(ControlMethod):
    """Scale the solar charging budget to ``fraction`` of the surplus.

    Sets :attr:`SolarCharger.cap_fraction`; the unused surplus shows up
    as curtailment, so the energy ledger keeps closing without a new
    flow edge.
    """

    name = "charge_current_cap"

    def apply(self, fraction: float, t: float) -> bool:
        charger = self._charger
        if charger is None:
            raise RuntimeError("ChargeCurrentCapControl bound without a charger")
        fraction = min(1.0, max(0.0, fraction))
        if charger.cap_fraction == fraction:
            return False
        self._manager.decisions.record(
            t, "charge.current_cap", self.source,
            from_fraction=charger.cap_fraction, to_fraction=fraction,
        )
        charger.cap_fraction = fraction
        return True
