"""Deterministic policy input signals.

A :class:`SignalProvider` answers two questions about one external
quantity at simulation time ``t``: its numeric value (``value(t)``) and
the discrete zone that value falls in (``zone(t)`` — the label a ``list``
governor consumes, mirroring ElectricityMaps-style carbon bands).

The synthetic carbon-intensity and energy-price providers are *pure
functions of (seed, t)*: a diurnal base curve plus piecewise-constant
hourly noise, where each hour block's perturbation is derived from
``sha256(f"{seed}:{name}:{hour}")`` — the same child-seeding idiom as
:class:`repro.sim.rng.RandomStreams`.  Purity is what lets the scalar
simulator and the vectorized fleet kernel evaluate the identical signal
without sharing generator state, and what the hypothesis suite pins
(seed-determinism, bounds, 24-hour period-consistency of the noise-free
component).

Two plant-backed providers (battery SoC, solar forecast) read controller
state instead; they must be bound to a manager before use.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotations only; keeps policy importable standalone
    from repro.battery.charger import SolarCharger
    from repro.core.controller_base import PowerManager

TWO_PI = 2.0 * math.pi
HOUR_S = 3600.0
DAY_S = 86400.0


def _hour_noise(seed: int, name: str, hour_index: int) -> float:
    """Deterministic uniform draw in [-1, 1) for one (seed, name, hour)."""
    digest = hashlib.sha256(f"{seed}:{name}:{hour_index}".encode()).digest()
    unit = int.from_bytes(digest[:8], "little") / 2.0**64
    return 2.0 * unit - 1.0


class SignalProvider:
    """Base class for policy input signals.

    Parameters
    ----------
    name:
        Stream name; part of the per-hour noise derivation, so two
        providers with the same seed but different names draw
        independent noise (exactly like named
        :class:`~repro.sim.rng.RandomStreams`).
    zones:
        Ascending ``(label, upper_bound)`` pairs; a value belongs to the
        first zone whose upper bound it does not exceed, and to the last
        zone otherwise (its bound is conventionally ``inf``).
    """

    #: Physical unit of ``value`` (documentation / report labelling).
    unit = ""

    def __init__(self, name: str,
                 zones: Sequence[tuple[str, float]] = ()) -> None:
        self.name = name
        self.zones = tuple(zones)
        if self.zones:
            bounds = [b for _, b in self.zones[:-1]]
            if bounds != sorted(bounds):
                raise ValueError("zone upper bounds must ascend")

    #: Value bounds the provider promises (inclusive).
    bounds: tuple[float, float] = (-math.inf, math.inf)

    def value(self, t: float) -> float:
        raise NotImplementedError

    def zone(self, t: float) -> str:
        """Zone label of ``value(t)`` under the declared thresholds."""
        if not self.zones:
            raise ValueError(f"signal {self.name!r} declares no zones")
        v = self.value(t)
        for label, upper in self.zones[:-1]:
            if v <= upper:
                return label
        return self.zones[-1][0]

    def bind(self, manager: PowerManager,
             charger: SolarCharger | None = None) -> None:
        """Attach plant references; synthetic providers need none."""
        return None


class DiurnalSignal(SignalProvider):
    """Shared machinery for the synthetic day-shaped signals.

    ``value(t) = clamp(diurnal(hour_of_day) + noise_amp * u(hour), lo, hi)``
    where ``u`` is the per-hour uniform draw.  Subclasses implement the
    noise-free ``diurnal`` component, which is 24-hour periodic — the
    property the hypothesis suite checks as *period-consistency*.
    """

    def __init__(self, name: str, seed: int, noise_amp: float,
                 bounds: tuple[float, float],
                 zones: Sequence[tuple[str, float]]) -> None:
        super().__init__(name, zones)
        self.seed = int(seed)
        self.noise_amp = float(noise_amp)
        self.bounds = (float(bounds[0]), float(bounds[1]))

    def diurnal(self, hour_of_day: float) -> float:
        raise NotImplementedError

    def value(self, t: float) -> float:
        if t < 0:
            raise ValueError("t must be non-negative")
        hour_of_day = (t % DAY_S) / HOUR_S
        raw = self.diurnal(hour_of_day)
        if self.noise_amp > 0.0:
            raw += self.noise_amp * _hour_noise(self.seed, self.name,
                                                int(t // HOUR_S))
        lo, hi = self.bounds
        return min(hi, max(lo, raw))


class CarbonIntensitySignal(DiurnalSignal):
    """Synthetic grid carbon intensity (gCO2eq/kWh).

    The diurnal component dips at solar noon (high renewable share) and
    peaks overnight, mimicking the shape of ElectricityMaps zone data:
    ``base - amplitude * cos(2π (h - trough_hour) / 24)``.  Zones follow
    the familiar green/yellow/red/black bands.
    """

    unit = "gCO2/kWh"

    def __init__(self, seed: int = 0, base: float = 420.0,
                 amplitude: float = 180.0, noise_amp: float = 35.0,
                 trough_hour: float = 13.0,
                 bounds: tuple[float, float] = (60.0, 720.0)) -> None:
        super().__init__(
            "carbon", seed, noise_amp, bounds,
            zones=(("green", 250.0), ("yellow", 420.0),
                   ("red", 560.0), ("black", math.inf)),
        )
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.trough_hour = float(trough_hour)

    def diurnal(self, hour_of_day: float) -> float:
        phase = TWO_PI * (hour_of_day - self.trough_hour) / 24.0
        return self.base - self.amplitude * math.cos(phase)


class EnergyPriceSignal(DiurnalSignal):
    """Synthetic day-ahead energy price (cents/kWh).

    A flat base with gaussian morning and evening demand peaks — the
    double-hump shape of real day-ahead markets — plus hourly noise.
    """

    unit = "ct/kWh"

    def __init__(self, seed: int = 0, base: float = 22.0,
                 morning_peak: float = 14.0, evening_peak: float = 20.0,
                 noise_amp: float = 3.0,
                 bounds: tuple[float, float] = (4.0, 75.0)) -> None:
        super().__init__(
            "price", seed, noise_amp, bounds,
            zones=(("cheap", 18.0), ("normal", 30.0),
                   ("expensive", 45.0), ("extreme", math.inf)),
        )
        self.base = float(base)
        self.morning_peak = float(morning_peak)
        self.evening_peak = float(evening_peak)

    def diurnal(self, hour_of_day: float) -> float:
        morning = self.morning_peak * math.exp(
            -((hour_of_day - 8.0) ** 2) / (2.0 * 2.0**2)
        )
        evening = self.evening_peak * math.exp(
            -((hour_of_day - 19.5) ** 2) / (2.0 * 2.5**2)
        )
        return self.base + morning + evening


class BatterySocSignal(SignalProvider):
    """Lowest online-cabinet SoC estimate, read through the sensing chain."""

    unit = "soc"
    bounds = (0.0, 1.0)

    def __init__(self) -> None:
        super().__init__(
            "soc",
            zones=(("critical", 0.25), ("low", 0.45),
                   ("nominal", 0.75), ("full", math.inf)),
        )
        self._manager: PowerManager | None = None

    def bind(self, manager: PowerManager,
             charger: SolarCharger | None = None) -> None:
        self._manager = manager

    def value(self, t: float) -> float:
        if self._manager is None:
            raise RuntimeError("BatterySocSignal used before bind()")
        names = [u.name for u in self._manager.online_units()]
        if not names:
            return 0.0
        return self._manager.telemetry.min_soc(names)


class SolarForecastSignal(SignalProvider):
    """Short-horizon solar forecast: the controller's slow solar EMA (W)."""

    unit = "W"
    bounds = (0.0, math.inf)

    def __init__(self) -> None:
        super().__init__(
            "solar",
            zones=(("dark", 50.0), ("dim", 300.0),
                   ("bright", 700.0), ("peak", math.inf)),
        )
        self._manager: PowerManager | None = None

    def bind(self, manager: PowerManager,
             charger: SolarCharger | None = None) -> None:
        self._manager = manager

    def value(self, t: float) -> float:
        if self._manager is None:
            raise RuntimeError("SolarForecastSignal used before bind()")
        return self._manager.solar_ema_slow_w
