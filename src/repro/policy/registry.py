"""Name-based registries for governors, control methods and signals.

Scenario definitions and user configs refer to policy pieces by short
names (``control=duty_cap``, ``signal=carbon``, ``governor=step:...``);
the registries resolve them.  Third-party code extends the vocabulary
with :func:`register_control` / :func:`register_signal` /
:func:`register_governor_rule` — see ``docs/policy.md`` for a worked
example.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.policy import governors as _governors
from repro.policy.controls import (
    ChargeCurrentCapControl,
    CheckpointShedControl,
    ControlMethod,
    DutyCapControl,
    VmRetargetControl,
)
from repro.policy.governors import Governor
from repro.policy.signals import (
    BatterySocSignal,
    CarbonIntensitySignal,
    EnergyPriceSignal,
    SignalProvider,
    SolarForecastSignal,
)

_CONTROLS: dict[str, Callable[[], ControlMethod]] = {
    DutyCapControl.name: DutyCapControl,
    VmRetargetControl.name: VmRetargetControl,
    CheckpointShedControl.name: CheckpointShedControl,
    ChargeCurrentCapControl.name: ChargeCurrentCapControl,
}

#: Signal factories take the experiment seed (plant-backed signals
#: ignore it — their state arrives at bind time).
_SIGNALS: dict[str, Callable[[int], SignalProvider]] = {
    "carbon": lambda seed: CarbonIntensitySignal(seed=seed),
    "price": lambda seed: EnergyPriceSignal(seed=seed),
    "soc": lambda seed: BatterySocSignal(),
    "solar": lambda seed: SolarForecastSignal(),
}

_GOVERNOR_RULES: dict[str, Callable[[str], Governor]] = {}


def control_names() -> list[str]:
    return sorted(_CONTROLS)


def signal_names() -> list[str]:
    return sorted(_SIGNALS)


def make_control(name: str) -> ControlMethod:
    try:
        return _CONTROLS[name]()
    except KeyError:
        raise ValueError(
            f"unknown control method {name!r}; known: {control_names()}"
        ) from None


def make_signal(name: str, seed: int = 0) -> SignalProvider:
    try:
        return _SIGNALS[name](seed)
    except KeyError:
        raise ValueError(
            f"unknown signal {name!r}; known: {signal_names()}"
        ) from None


def make_governor(spec: str) -> Governor:
    """Resolve a governor rule string, consulting registered custom rules
    before the built-in ``const``/``list``/``step``/``linear`` grammar."""
    kind = spec.strip().partition(":")[0]
    if kind in _GOVERNOR_RULES:
        return _GOVERNOR_RULES[kind](spec)
    return _governors.parse_governor(spec)


def register_control(cls: type[ControlMethod]) -> type[ControlMethod]:
    """Register a control method class under its ``name`` attribute.

    Usable as a decorator; re-registering a taken name raises so a typo
    cannot silently shadow a built-in.
    """
    name = cls.name
    if name in _CONTROLS:
        raise ValueError(f"control method name {name!r} already registered")
    _CONTROLS[name] = cls
    return cls


def register_signal(name: str,
                    factory: Callable[[int], SignalProvider]) -> None:
    if name in _SIGNALS:
        raise ValueError(f"signal name {name!r} already registered")
    _SIGNALS[name] = factory


def register_governor_rule(kind: str,
                           parser: Callable[[str], Governor]) -> None:
    """Register a custom governor rule kind for :func:`make_governor`."""
    if kind in _GOVERNOR_RULES or kind in ("const", "list", "step", "linear"):
        raise ValueError(f"governor rule kind {kind!r} already registered")
    _GOVERNOR_RULES[kind] = parser
