"""Pluggable power-scaling policies: governors × control methods.

EcoFreq's decomposition (SNIPPETS.md §1) applied to the in-situ system:
a :class:`~repro.policy.governors.Governor` converts an input signal
(battery SoC, solar forecast, synthetic carbon intensity or energy
price) to a capacity limit, a
:class:`~repro.policy.controls.ControlMethod` applies it (DVFS duty cap,
VM retarget, checkpoint shed, charge-current cap), and a
:class:`~repro.policy.policy.Policy` pairs the two behind one signal
provider and steps them on an interval.  The paper's own SPM/TPM
controllers are compositions of the same pieces — see
``repro.core.temporal`` / ``repro.core.spatial`` — verified bit-exact
against the pinned golden matrix.
"""

from repro.policy.controls import (
    ChargeCurrentCapControl,
    CheckpointShedControl,
    ControlMethod,
    DutyCapControl,
    VmRetargetControl,
)
from repro.policy.governors import (
    BudgetRampGovernor,
    ConstGovernor,
    Governor,
    LinearGovernor,
    ListGovernor,
    StepGovernor,
    parse_governor,
)
from repro.policy.policy import Policy
from repro.policy.registry import (
    make_control,
    make_governor,
    make_signal,
    register_control,
    register_governor_rule,
    register_signal,
)
from repro.policy.signals import (
    BatterySocSignal,
    CarbonIntensitySignal,
    EnergyPriceSignal,
    SignalProvider,
    SolarForecastSignal,
)

__all__ = [
    "BatterySocSignal",
    "BudgetRampGovernor",
    "CarbonIntensitySignal",
    "ChargeCurrentCapControl",
    "CheckpointShedControl",
    "ConstGovernor",
    "ControlMethod",
    "DutyCapControl",
    "EnergyPriceSignal",
    "Governor",
    "LinearGovernor",
    "ListGovernor",
    "Policy",
    "SignalProvider",
    "SolarForecastSignal",
    "StepGovernor",
    "VmRetargetControl",
    "make_control",
    "make_governor",
    "make_signal",
    "parse_governor",
    "register_control",
    "register_governor_rule",
    "register_signal",
]
