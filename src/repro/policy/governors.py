"""Governors: formulas converting an input signal to a capacity limit.

Following EcoFreq's decomposition (SNIPPETS.md §1), a *governor* is the
"what limit does this signal imply" half of a policy; the *control method*
(:mod:`repro.policy.controls`) is the "how is the limit applied" half.
Four rule families cover the paper's scenarios:

* ``const`` — a fixed limit, independent of the signal.  The TPM's
  per-cabinet discharge-current cap (Figure 11) is a const governor.
* ``list`` — a discrete zone → limit table ("green=max, red=0.5"), fed
  by a signal provider's zone labels (e.g. carbon-intensity bands).
* ``step`` — a threshold staircase over a numeric signal
  (``step:100=70%:200=50%``: at or above 100 the limit is 0.7, at or
  above 200 it is 0.5, below 100 it is the ``below`` limit).
* ``linear`` — linear interpolation between two signal pivots, with the
  endpoint limits returned *exactly* at and beyond the pivots.

Limits are dimensionless capacity fractions in ``[0, 1]`` unless a
governor declares otherwise through :attr:`Governor.limit_range` —
:class:`BudgetRampGovernor` (the SPM's Eq. 1 prorated discharge budget)
returns amp-hours and declares an unbounded range.

The :func:`parse_governor` grammar mirrors EcoFreq's config strings so a
scenario definition can carry its policy as one readable token.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def parse_limit_value(token: str) -> float:
    """Parse one limit token: ``max`` → 1.0, ``70%`` → 0.7, else float."""
    token = token.strip()
    if token == "max":
        return 1.0
    if token == "min":
        return 0.0
    if token.endswith("%"):
        return float(token[:-1]) / 100.0
    return float(token)


class Governor:
    """Base class: maps an input signal to a capacity limit.

    Subclasses implement :meth:`limit` and keep it a *pure* function of
    the signal — governors hold no mutable state, which is what makes the
    refactored SPM/TPM controllers bit-exact compositions and lets the
    conformance kit probe them exhaustively.
    """

    #: Inclusive output range the governor promises to stay within.
    limit_range: tuple[float, float] = (0.0, 1.0)
    #: ``"value"`` governors consume the provider's numeric signal;
    #: ``"zone"`` governors consume its discrete zone label.
    input_kind: str = "value"

    def limit(self, signal: float = 0.0) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class ConstGovernor(Governor):
    """``const:VALUE`` — the limit is the same for every signal value.

    The stored value is *not* forced into [0, 1]: the TPM's discharge cap
    uses a const governor whose value is a precomputed current in amps
    (``cap_c_rate * capacity_ah``), preserving the exact float product the
    original monolithic controller computed.
    """

    def __init__(self, value: float) -> None:
        self.value = float(value)
        self.limit_range = (self.value, self.value)

    def limit(self, signal: float = 0.0) -> float:
        return self.value

    def describe(self) -> str:
        return f"const:{self.value:g}"


class ListGovernor(Governor):
    """``list:ZONE=LIMIT:...`` — a discrete zone-label → limit table.

    The signal provider supplies the zone label (its ``zone(t)``); unknown
    labels fall back to ``default`` — by convention the most conservative
    (smallest) limit in the table, so a provider growing a new zone can
    never accidentally *raise* the cap.
    """

    input_kind = "zone"

    def __init__(self, table: Mapping[str, float],
                 default: float | None = None) -> None:
        if not table:
            raise ValueError("list governor needs at least one zone entry")
        self.table = {str(k): float(v) for k, v in table.items()}
        self.default = float(default) if default is not None \
            else min(self.table.values())
        values = [*self.table.values(), self.default]
        self.limit_range = (min(values), max(values))

    def limit(self, signal: float | str = "") -> float:
        return self.table.get(signal, self.default)

    def describe(self) -> str:
        entries = ":".join(f"{k}={v:g}" for k, v in self.table.items())
        return f"list:{entries}"


class StepGovernor(Governor):
    """``step:T1=L1:T2=L2:...`` — a staircase over a numeric signal.

    Thresholds ascend; the limit belongs to the greatest threshold at or
    below the signal.  Signals below every threshold get ``below``
    (default 1.0 — no restriction while the signal is benign).
    """

    def __init__(self, steps: Sequence[tuple[float, float]],
                 below: float = 1.0) -> None:
        if not steps:
            raise ValueError("step governor needs at least one threshold")
        ordered = sorted((float(t), float(v)) for t, v in steps)
        thresholds = [t for t, _ in ordered]
        if len(set(thresholds)) != len(thresholds):
            raise ValueError("step governor thresholds must be distinct")
        self.steps = ordered
        self.below = float(below)
        values = [v for _, v in ordered] + [self.below]
        self.limit_range = (min(values), max(values))

    def limit(self, signal: float = 0.0) -> float:
        chosen = self.below
        for threshold, value in self.steps:
            if signal >= threshold:
                chosen = value
            else:
                break
        return chosen

    def describe(self) -> str:
        entries = ":".join(f"{t:g}={v:g}" for t, v in self.steps)
        return f"step:{entries}"


class LinearGovernor(Governor):
    """``linear:LO:HI[:LIMIT_AT_LO:LIMIT_AT_HI]`` — linear interpolation.

    At or below the ``lo`` pivot the limit is exactly ``limit_at_lo``
    (default 1.0); at or beyond ``hi`` exactly ``limit_at_hi`` (default
    0.0); in between it interpolates linearly.  Endpoint exactness is a
    contract the property suite pins: no last-ulp wobble at the pivots.
    """

    def __init__(self, lo: float, hi: float,
                 limit_at_lo: float = 1.0, limit_at_hi: float = 0.0) -> None:
        lo, hi = float(lo), float(hi)
        if not hi > lo:
            raise ValueError(f"linear governor needs hi > lo, got {lo}..{hi}")
        self.lo = lo
        self.hi = hi
        self.limit_at_lo = float(limit_at_lo)
        self.limit_at_hi = float(limit_at_hi)
        self.limit_range = (min(self.limit_at_lo, self.limit_at_hi),
                            max(self.limit_at_lo, self.limit_at_hi))

    def limit(self, signal: float = 0.0) -> float:
        if signal <= self.lo:
            return self.limit_at_lo
        if signal >= self.hi:
            return self.limit_at_hi
        frac = (signal - self.lo) / (self.hi - self.lo)
        return self.limit_at_lo + frac * (self.limit_at_hi - self.limit_at_lo)

    def describe(self) -> str:
        return (f"linear:{self.lo:g}:{self.hi:g}"
                f":{self.limit_at_lo:g}:{self.limit_at_hi:g}")


class BudgetRampGovernor(Governor):
    """Eq. 1's prorated lifetime-budget ramp: D_L · T / T_L, in Ah.

    The SPM's discharge-threshold formula is this governor plus the
    carried-over unused budget and the elastic bonus (state that stays in
    :class:`~repro.core.spatial.SpatialPolicy`).  The expression keeps
    the exact association order of the original monolith —
    ``lifetime_ah * (t / 86400.0) / design_life_days`` — so the golden
    digests are unchanged by the composition refactor.
    """

    limit_range = (0.0, math.inf)

    def __init__(self, lifetime_ah: float, design_life_days: float) -> None:
        if lifetime_ah <= 0 or design_life_days <= 0:
            raise ValueError("lifetime_ah and design_life_days must be positive")
        self.lifetime_ah = float(lifetime_ah)
        self.design_life_days = float(design_life_days)

    def limit(self, signal: float = 0.0) -> float:
        """Prorated budget in Ah for ``signal`` elapsed seconds."""
        return self.lifetime_ah * (signal / 86400.0) / self.design_life_days

    def daily(self) -> float:
        """One day's worth of the lifetime budget (Ah)."""
        return self.lifetime_ah / self.design_life_days

    def describe(self) -> str:
        return f"budget-ramp:{self.lifetime_ah:g}Ah/{self.design_life_days:g}d"


def parse_governor(spec: str) -> Governor:
    """Build a governor from an EcoFreq-style rule string.

    Grammar (colon-separated)::

        const:0.8 | const:80% | const:max
        list:green=max:yellow=0.7:red=0.5[:default=0.5]
        step:100=70%:200=50%[:below=max]
        linear:100:500[:LIMIT_AT_LO:LIMIT_AT_HI]

    Raises ``ValueError`` naming the offending spec on any syntax error.
    """
    kind, _, rest = spec.strip().partition(":")
    try:
        if kind == "const":
            return ConstGovernor(parse_limit_value(rest))
        if kind == "list":
            table: dict[str, float] = {}
            default: float | None = None
            for part in rest.split(":"):
                label, sep, value = part.partition("=")
                if not sep:
                    raise ValueError(f"malformed list entry {part!r}")
                if label.strip() == "default":
                    default = parse_limit_value(value)
                else:
                    table[label.strip()] = parse_limit_value(value)
            return ListGovernor(table, default=default)
        if kind == "step":
            steps: list[tuple[float, float]] = []
            below = 1.0
            for part in rest.split(":"):
                left, sep, value = part.partition("=")
                if not sep:
                    raise ValueError(f"malformed step entry {part!r}")
                if left.strip() == "below":
                    below = parse_limit_value(value)
                else:
                    steps.append((float(left), parse_limit_value(value)))
            return StepGovernor(steps, below=below)
        if kind == "linear":
            parts = rest.split(":")
            if len(parts) == 2:
                return LinearGovernor(float(parts[0]), float(parts[1]))
            if len(parts) == 4:
                return LinearGovernor(
                    float(parts[0]), float(parts[1]),
                    parse_limit_value(parts[2]), parse_limit_value(parts[3]),
                )
            raise ValueError("linear takes 2 or 4 parameters")
    except ValueError as exc:
        raise ValueError(f"bad governor spec {spec!r}: {exc}") from None
    raise ValueError(
        f"bad governor spec {spec!r}: unknown rule kind {kind!r} "
        "(expected const, list, step or linear)"
    )
