"""Policy = signal × governor × control method.

A :class:`Policy` owns one signal provider, one governor and one control
method, and steps on its own interval exactly like the TPM/SPM periods:
an elapsed accumulator initialised to ``inf`` so the first evaluation
happens on the first tick after attach.  Each evaluation reads the
signal (numeric value or zone label, per the governor's declared input
kind), converts it to a capacity limit, records a ``policy.limit``
decision event when the limit *changed*, and hands the limit to the
control method.

Policies attach to a power manager via
:meth:`repro.core.controller_base.PowerManager.attach_policy`; an empty
policy list costs the controller nothing, which is how the refactor
leaves the 12 golden cells bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policy.controls import ControlMethod
from repro.policy.governors import Governor
from repro.policy.signals import SignalProvider

if TYPE_CHECKING:  # annotations only; keeps policy importable standalone
    from repro.battery.charger import SolarCharger
    from repro.core.controller_base import PowerManager


class Policy:
    """One (signal, governor, control) pairing stepped on an interval."""

    def __init__(
        self,
        name: str,
        signal: SignalProvider,
        governor: Governor,
        control: ControlMethod,
        interval_s: float = 300.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.name = name
        self.signal = signal
        self.governor = governor
        self.control = control
        self.interval_s = float(interval_s)
        self._elapsed = float("inf")
        self._last_limit: float | None = None
        self._manager: PowerManager | None = None
        #: Evaluations performed (observability; not control state).
        self.evaluations = 0

    def bind(self, manager: PowerManager,
             charger: SolarCharger | None = None) -> None:
        """Wire plant references into the signal and control halves."""
        self._manager = manager
        self.signal.bind(manager, charger)
        self.control.bind(manager, charger)
        self.control.source = self.name

    def reading(self, t: float) -> float | str:
        """The signal as the governor wants it: value or zone label."""
        if self.governor.input_kind == "zone":
            return self.signal.zone(t)
        return self.signal.value(t)

    def evaluate(self, t: float) -> float:
        """One governor evaluation + control application at time ``t``."""
        reading = self.reading(t)
        limit = self.governor.limit(reading)
        self.evaluations += 1
        if limit != self._last_limit:
            self._manager.decisions.record(
                t, "policy.limit", self.name,
                signal=self.signal.name, reading=reading, limit=limit,
            )
            self._last_limit = limit
        self.control.apply(limit, t)
        return limit

    def step(self, t: float, dt: float) -> None:
        """Advance the interval accumulator; evaluate when it fires."""
        self._elapsed += dt
        if self._elapsed >= self.interval_s:
            self._elapsed = 0.0
            self.evaluate(t)

    def describe(self) -> str:
        return (f"{self.name}: {self.signal.name} -> "
                f"{self.governor.describe()} -> {self.control.describe()} "
                f"@ {self.interval_s:g}s")
