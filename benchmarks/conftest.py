"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and prints
the reproduced rows/series next to the paper's reported values, then
asserts the qualitative *shape* (who wins, by roughly what factor, where
crossovers fall).  Absolute numbers are not expected to match: the
substrate is a simulator, not the authors' testbed (see EXPERIMENTS.md).
"""

from __future__ import annotations


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def row(label: str, *cells: object) -> None:
    print(f"  {label:34s} " + "  ".join(f"{c!s:>12s}" for c in cells))
