"""Fleet kernel performance gate: >= 50x aggregate throughput at batch 1024.

Not a paper figure — this guards the vectorized SoA backend against
regressions.  It times the scalar reference engine and a 1024-site fleet
batch on the same golden cell (insure/video/sunny), interleaved and
best-of-N so shared-core wobble cancels out of the ratio, then writes
``BENCH_fleet.json`` at the repository root.  CI compare-gates the
``ticks_per_second`` field via ``benchmarks/compare_bench.py`` exactly
like the engine smoke.
"""

import dataclasses
import json
import time
from pathlib import Path

import pytest

from conftest import banner, row

np = pytest.importorskip("numpy")

from repro.sim.fleet.debug import build_scalar_system  # noqa: E402
from repro.sim.fleet.kernel import _FleetBatch  # noqa: E402
from repro.sim.fleet.validator import spec_for_cell  # noqa: E402

BATCH_SITES = 1024
#: Interleaved timing rounds; the gated ratio uses the best of each side.
ROUNDS = 3
WARMUP_TICKS = 10
FLEET_TICKS = 300
SCALAR_TICKS = 1500
SPEEDUP_FLOOR = 50.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _fleet_batch():
    from repro.sim.fleet import controllers

    base = spec_for_cell("insure", "video", "sunny")
    specs = [dataclasses.replace(base, seed=base.seed + i)
             for i in range(BATCH_SITES)]
    batch = _FleetBatch(specs)
    controllers.start(batch)
    return batch


def _time_fleet(batch, start_tick, ticks):
    t0 = time.perf_counter()
    for k in range(start_tick, start_tick + ticks):
        batch.step_tick(k)
    return time.perf_counter() - t0


def _time_scalar(system, ticks, dt):
    t0 = time.perf_counter()
    system.engine.run(ticks * dt)
    return time.perf_counter() - t0


def test_fleet_speedup_at_batch_1024():
    batch = _fleet_batch()
    system = build_scalar_system("insure", "video", "sunny")
    dt = batch.dt

    # Warm both paths (allocations, noise-block fills, JIT-free but cold
    # caches), then interleave the timed rounds so any background load
    # penalises both sides alike.
    tick = 0
    _time_fleet(batch, tick, WARMUP_TICKS)
    tick += WARMUP_TICKS
    _time_scalar(system, WARMUP_TICKS, dt)

    fleet_best = float("inf")
    scalar_best = float("inf")
    for _ in range(ROUNDS):
        fleet_best = min(fleet_best, _time_fleet(batch, tick, FLEET_TICKS))
        tick += FLEET_TICKS
        scalar_best = min(scalar_best, _time_scalar(system, SCALAR_TICKS, dt))

    fleet_tps = BATCH_SITES * FLEET_TICKS / fleet_best
    scalar_tps = SCALAR_TICKS / scalar_best
    speedup = fleet_tps / scalar_tps

    banner(f"Fleet kernel throughput (batch {BATCH_SITES}, insure/video/sunny)")
    row("scalar engine", f"{scalar_tps:,.0f} ticks/s")
    row("fleet kernel", f"{fleet_tps:,.0f} site-ticks/s")
    row("aggregate speedup", f"{speedup:.1f}x", f"(gate >= {SPEEDUP_FLOOR:g}x)")

    BENCH_PATH.write_text(json.dumps({
        "cell": "fleet batch insure/video/sunny, 1024 sites vs scalar engine",
        "batch_sites": BATCH_SITES,
        "ticks_per_second": round(fleet_tps, 1),
        "scalar_ticks_per_second": round(scalar_tps, 1),
        "speedup": round(speedup, 2),
        "cold_seconds": round(fleet_best, 4),
    }, indent=2) + "\n")

    assert speedup >= SPEEDUP_FLOOR, (
        f"fleet speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:g}x floor "
        f"(fleet {fleet_tps:,.0f} site-ticks/s, scalar {scalar_tps:,.0f})"
    )
