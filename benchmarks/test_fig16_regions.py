"""Figure 16: full-day operation demonstration with Regions A-E."""

from conftest import banner, row

from repro.experiments.behavior import run_fig16_fullday


def test_fig16_fullday_regions(benchmark):
    """A live-MPPT day run exhibits the paper's characteristic regions:
    A initial battery charging, B power tracking, C temporal control,
    D supply-demand matching under abundant solar, E fluctuation."""
    result = benchmark.pedantic(run_fig16_fullday, rounds=1, iterations=1)
    banner("Figure 16 — full-day regions")
    row("Region A: morning charging observed", result.had_morning_charging)
    row("Region B/E: MPPT output ripple (W)", f"{result.mppt_tracking_std_w:.0f}")
    row("Region C: capping events + stops",
        result.capping_events + result.checkpoint_stops)
    row("Region D: abundant-solar fraction", f"{result.abundant_fraction:.2f}")

    assert result.had_morning_charging, "no Region A (initial charging)"
    assert result.capping_events + result.checkpoint_stops > 0, "no Region C"
    assert 0.05 < result.abundant_fraction < 0.95, "no Region D contrast"
    assert result.mppt_tracking_std_w > 0.0, "no Region B/E tracking ripple"
