"""Provisioning sensitivity (the paper's §6.5 open question, quantified).

"Over-provisioning increases the TCO of InSURE and changes the position
of the intersection point" — this bench sweeps the e-Buffer size over a
full day-and-night and prices each increment.
"""

from conftest import banner, row

from repro.experiments.provisioning import diminishing_returns, run_provisioning_sweep


def test_provisioning_ebuffer_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: run_provisioning_sweep(battery_counts=(2, 3, 4, 5),
                                       seeds=(12, 21)),
        rounds=1, iterations=1,
    )
    banner("Provisioning — e-Buffer size over 24 h (day + night)")
    row("cabinets", *[p.battery_count for p in points])
    row("processed (GB, seed-avg)", *[f"{p.processed_gb:.1f}" for p in points])
    row("uptime", *[f"{p.uptime_fraction * 100:.0f}%" for p in points])
    row("extra cost ($/yr)", *[f"{p.extra_cost_usd_year:+.0f}" for p in points])
    gains = diminishing_returns(points)
    row("marginal GB per cabinet", "", *[f"{g:+.1f}" for g in gains])

    # Shape: more buffer never hurts much, and the largest configuration
    # processes the most (night serving is buffer-bound).
    processed = [p.processed_gb for p in points]
    assert processed[-1] >= processed[0]
    assert min(processed) >= 0.85 * max(processed)
    # The over-provisioning question is real: the marginal cabinet buys
    # far less than the pod's baseline productivity (diminishing returns).
    per_cabinet_baseline = processed[1] / 3.0
    assert all(g < per_cabinet_baseline for g in gains)
