"""Figure 5: the unified buffer forces full switch-out."""

from conftest import banner, row

from repro.experiments.behavior import run_fig5_unified_switchout


def test_fig5_unified_buffer_switchout(benchmark):
    """A seismic run on the unified-buffer baseline goes dark when the
    bank trips — the paper's 2-hour trace snapshot."""
    result = benchmark.pedantic(run_fig5_unified_switchout, rounds=1, iterations=1)
    banner("Figure 5 — unified buffer switch-out during seismic analysis")
    row("switch-out events", len(result.switch_out_times))
    if result.switch_out_times:
        row("first switch-out at (h)", f"{result.switch_out_times[0] / 3600:.2f}")
    row("demand before (W)", f"{result.demand_before_w:.0f}")
    row("demand after (W)", f"{result.demand_after_w:.0f}")

    # The bank tripped at least once and service dropped to (near) zero.
    assert len(result.switch_out_times) >= 1
    assert result.demand_before_w > 500.0
    assert result.demand_after_w < result.demand_before_w * 0.3
    # Once the servers finish saving, the whole bank is pulled to the
    # charge bus (the save itself takes ~4 minutes).
    stop_t = result.switch_out_times[0]
    pulled = {
        e.source
        for e in result.system.events.of_kind("buffer.mode")
        if e.data.get("to") == "charging" and stop_t <= e.t <= stop_t + 600.0
    }
    assert len(pulled) == len(result.system.bank)
