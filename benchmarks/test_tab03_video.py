"""Table 3: Hadoop video analysis at the same 2 kWh energy budget."""

import pytest
from conftest import banner, row

from repro.experiments.fixed_config import run_energy_window
from repro.workloads import VideoSurveillance

PAPER_THR_GB_MIN = {8: 0.21, 6: 0.17, 4: 0.10, 2: 0.07}
PAPER_DELAY_MIN = {8: 0.0, 6: 0.25, 4: 0.5, 2: 1.5}


def test_table3_video_vm_configs(benchmark):
    """Paper: throughput 0.21/0.17/0.10/0.07 GB per minute and delay
    0/0.25/0.5/1.5 min for 8/6/4/2 VMs."""

    def run():
        return {
            vms: run_energy_window(VideoSurveillance(), vms)
            for vms in (8, 6, 4, 2)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Table 3 — video stream throughput at 2 kWh")
    configs = (8, 6, 4, 2)
    row("VMs", *configs)
    row("avg power (W) [paper 1411..335]",
        *[f"{rows[v].avg_power_w:.0f}" for v in configs])
    row("thr GB/min    [paper .21/.17/.10/.07]",
        *[f"{rows[v].throughput_gb_per_hour / 60:.3f}" for v in configs])
    row("delay (min)   [paper 0/.25/.5/1.5]",
        *[f"{rows[v].mean_delay_minutes:.1f}" for v in configs])

    thr = [rows[v].throughput_gb_per_hour / 60 for v in configs]
    delays = [rows[v].mean_delay_minutes for v in configs]
    # Shape: throughput falls monotonically, delay rises monotonically,
    # the full configuration keeps up with the stream (zero delay), and
    # halving VMs costs roughly the paper's ~66 % throughput at 2 VMs.
    assert thr == sorted(thr, reverse=True)
    assert delays == sorted(delays)
    assert delays[0] < 1.0
    assert thr[-1] / thr[0] < 0.45
    for vms in configs:
        measured = rows[vms].throughput_gb_per_hour / 60
        assert measured == pytest.approx(PAPER_THR_GB_MIN[vms], rel=0.35)
