"""Figure 1: overheads of bulk data movement."""

from conftest import banner, row

from repro.cost.transfer import LINKS, aws_egress_cost_per_tb, transfer_hours_per_tb


def test_fig1a_transfer_time(benchmark):
    """Figure 1(a): hours per TB for typical network speeds."""
    times = benchmark(lambda: {n: transfer_hours_per_tb(m) for n, m in LINKS.items()})
    banner("Figure 1(a) — data transfer time (hours per TB)")
    for name, hours in times.items():
        row(name, f"{hours:,.1f} h")
    # Shape: spans four orders of magnitude, slowest link takes weeks.
    assert times["T1 (1.5 Mbps)"] / times["10 Gbps"] > 1_000
    assert times["T1 (1.5 Mbps)"] > 24 * 14


def test_fig1b_aws_egress(benchmark):
    """Figure 1(b): average $/TB of AWS data-transfer-out (Jan 2014)."""
    tiers = (10, 50, 150, 250, 500)
    costs = benchmark(lambda: [aws_egress_cost_per_tb(tb) for tb in tiers])
    banner("Figure 1(b) — AWS egress $/TB  (paper: ~$120 down to ~$50)")
    for tb, cost in zip(tiers, costs, strict=True):
        row(f"{tb} TB", f"${cost:.0f}/TB")
    assert costs[0] > 100.0
    assert costs[-1] < 60.0
    assert costs == sorted(costs, reverse=True)
    # Paper headline: over $60 per TB transferred out.
    assert all(c > 45.0 for c in costs)
