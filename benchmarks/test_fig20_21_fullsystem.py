"""Figures 20-21: full-system evaluation on real in-situ workloads.

Paper: InSURE outperforms the state-of-the-art baseline by 20 % to over
60 % across system uptime, data throughput, response time, energy
availability, battery lifetime and performance per Ah, with service
metrics improving most when solar is scarce.
"""

from conftest import banner, row

from repro.experiments.fullsystem import run_figure20, run_figure21


def _report(results, title):
    banner(title)
    metrics = ("system_uptime", "load_perf", "avg_latency", "ebuffer_avail",
               "service_life", "perf_per_ah")
    row("", *(m.replace("_", " ") for m in metrics))
    for level, comparison in results.items():
        improvements = comparison.improvements
        row(f"{level} solar ({comparison.solar_mean_w:.0f} W)",
            *[f"{improvements[m] * 100:+.0f}%" for m in metrics])
    return results


def _assert_shape(results):
    for level, comparison in results.items():
        improvements = comparison.improvements
        wins = sum(1 for v in improvements.values() if v > 0.0)
        # InSURE wins the clear majority of the six metrics.
        assert wins >= 4, (level, improvements)
        # Battery lifetime: the paper's most robust system-level gain.
        assert improvements["service_life"] > 0.10, (level, improvements)
    # The uptime benefit grows as the system becomes energy-constrained.
    assert (
        results["low"].improvements["system_uptime"]
        >= results["high"].improvements["system_uptime"] - 0.05
    )


def test_fig20_batch_fullsystem(benchmark):
    results = benchmark.pedantic(run_figure20, rounds=1, iterations=1)
    _report(results, "Figure 20 — in-situ batch job (seismic), InSURE vs baseline")
    _assert_shape(results)


def test_fig21_stream_fullsystem(benchmark):
    results = benchmark.pedantic(run_figure21, rounds=1, iterations=1)
    _report(results, "Figure 21 — in-situ data stream (video), InSURE vs baseline")
    _assert_shape(results)
