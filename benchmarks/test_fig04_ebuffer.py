"""Figure 4: key properties of the energy buffer."""

from conftest import banner, row

from repro.experiments.charging import run_fig4a_charging, run_fig4b_discharge


def test_fig4a_individual_vs_batch_charging(benchmark):
    """Figure 4(a): sequential charging ~50 % faster on a scarce budget."""
    result = benchmark.pedantic(run_fig4a_charging, rounds=1, iterations=1)
    banner("Figure 4(a) — charge time to 90 %, hours "
           "(paper: one-by-one ~50% faster)")
    row("budget (W)", *result.budgets_w)
    row("sequential", *[f"{h:.2f}" for h in result.sequential_h])
    row("batch", *[f"{h:.2f}" for h in result.batch_h])

    scarce = result.budgets_w[0]
    assert result.reduction_at(scarce) > 0.35
    # Crossover: with an abundant budget batch charging wins, which is
    # exactly why Figure 10 sizes the batch as N = P_G / P_PC.
    abundant = result.budgets_w[-1]
    assert result.reduction_at(abundant) < 0.0


def test_fig4b_discharge_and_recovery(benchmark):
    """Figure 4(b): rate-capacity effect and capacity recovery."""
    traces = benchmark.pedantic(run_fig4b_discharge, rounds=1, iterations=1)
    banner("Figure 4(b) — high vs low load discharge")
    high, low = traces["high"], traces["low"]
    row("", "high load", "low load")
    row("current (A)", f"{high.current_a:.0f}", f"{low.current_a:.0f}")
    row("cut-out after (min)", f"{high.cutout_t / 60:.0f}", f"{low.cutout_t / 60:.0f}")
    row("SoC stranded at cut-out", f"{high.soc_at_cutout:.2f}", f"{low.soc_at_cutout:.2f}")
    row("OCV after 30 min rest (V)", f"{high.recovered_voltage:.2f}",
        f"{low.recovered_voltage:.2f}")

    # Rate-capacity effect: high current cuts out far earlier with far
    # more capacity stranded.
    assert high.cutout_t < low.cutout_t
    assert high.soc_at_cutout > low.soc_at_cutout + 0.1
    # Recovery effect: resting lifts the voltage back above the LVD.
    assert high.recovered_voltage > 23.3 + 0.3
