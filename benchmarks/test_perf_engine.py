"""Performance smoke: tick throughput, cold-run wall time, cache replay.

Not a paper figure — this guards the fast simulation core itself.  It
measures one deterministic full-system day (the Figure 20 "high solar"
cell), derives sustained ticks/second, then replays the identical
configuration through the content-addressed run cache and checks the
replay is effectively free.  Results land in ``BENCH_engine.json`` at the
repository root so successive runs can be compared.
"""

import hashlib
import json
import time
from pathlib import Path

from conftest import banner, row

from repro.core.system import build_system
from repro.experiments.fullsystem import run_single
from repro.sim.cache import RunCache, cache_key
from repro.solar.traces import make_day_trace
from repro.workloads import SeismicAnalysis

#: One simulated day at dt=5 s.
DAY_SECONDS = 24 * 3600.0
DT = 5.0
TICKS = int(DAY_SECONDS / DT)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def test_engine_perf_smoke(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    t0 = time.perf_counter()
    cold = run_single("insure", "seismic", "sunny", 1000.0, seed=1, dt=DT)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_single("insure", "seismic", "sunny", 1000.0, seed=1, dt=DT)
    warm_s = time.perf_counter() - t0

    ticks_per_s = TICKS / cold_s

    banner("Engine performance smoke (Figure 20 high-solar cell)")
    row("cold run", f"{cold_s:.2f} s", f"{ticks_per_s:,.0f} ticks/s")
    row("cache replay", f"{warm_s * 1000:.1f} ms")

    BENCH_PATH.write_text(json.dumps({
        "cell": "fullsystem.run_single(insure, seismic, sunny, 1000W, seed=1)",
        "ticks": TICKS,
        "cold_seconds": round(cold_s, 4),
        "ticks_per_second": round(ticks_per_s, 1),
        "cache_replay_seconds": round(warm_s, 4),
    }, indent=2) + "\n")

    # The replay must be served from disk, bit-identical and near-instant.
    assert warm == cold
    assert warm_s < 0.5
    # Generous floor: the optimised kernel sustains ~20k ticks/s on one
    # modest core; trip only on order-of-magnitude regressions.
    assert ticks_per_s > 4000, f"engine too slow: {ticks_per_s:,.0f} ticks/s"


def _build_bench_cell(invariants):
    """The BENCH cell (insure/seismic/sunny/1000 W, seed 1), built fresh."""
    trace = make_day_trace("sunny", dt_seconds=DT, seed=1,
                           target_mean_w=1000.0)
    return build_system(trace, SeismicAnalysis(), controller="insure",
                        seed=1, initial_soc=0.55, dt=DT,
                        invariants=invariants)


def _timed_run(invariants):
    system = _build_bench_cell(invariants)
    t0 = time.perf_counter()
    system.run()
    return system, time.perf_counter() - t0


def test_invariant_checker_overhead():
    """The validate-layer checker must stay cheap when on and free when off.

    On: < 15 % wall-time overhead on the BENCH cell at the default check
    stride.  Off: exactly zero — not merely fast, but the same-seed run
    produces bit-identical traces whether or not the (read-only) checker
    is observing, so enabling it in CI cannot shift any golden digest.
    """
    def trace_hash(system):
        digest = hashlib.sha256()
        for name in ("t",) + system.recorder.names:
            digest.update(system.recorder[name].tobytes())
        return digest.hexdigest()

    # Best-of-2 timings: the absolute numbers wobble on a shared core,
    # the ratio of minima is stable enough for a 15 % gate.
    plain, plain_s = _timed_run(invariants=False)
    checked, checked_s = _timed_run(invariants=True)
    plain_s = min(plain_s, _timed_run(invariants=False)[1])
    checked_s = min(checked_s, _timed_run(invariants=True)[1])
    overhead = checked_s / plain_s - 1.0

    banner("Invariant checker overhead (BENCH cell, stride 12)")
    row("disabled", f"{plain_s:.2f} s")
    row("enabled", f"{checked_s:.2f} s",
        f"{overhead * 100:+.1f} %  ({checked.checker.checks_run} checks)")

    assert plain.checker is None
    checked.checker.assert_clean()
    assert trace_hash(plain) == trace_hash(checked)
    assert overhead < 0.15, f"checker overhead {overhead * 100:.1f}% >= 15%"


def test_observability_overhead():
    """Observability must stay under the 5 % gate when on, free when off.

    On: stride-sampled span tracing plus collection-time gauges and the
    decision log cost < 5 % wall time on the BENCH cell.  Off is the
    default build — nothing attached, so there is nothing to measure.
    Either way the same-seed traces are bit-identical: the instruments
    only read plant state (proven by digest equality here and in
    ``tests/obs/test_observability_system.py``).
    """
    from repro.obs.hub import Observability

    def trace_hash(system):
        digest = hashlib.sha256()
        for name in ("t",) + system.recorder.names:
            digest.update(system.recorder[name].tobytes())
        return digest.hexdigest()

    def timed_obs_run(observability):
        trace = make_day_trace("sunny", dt_seconds=DT, seed=1,
                               target_mean_w=1000.0)
        system = build_system(trace, SeismicAnalysis(), controller="insure",
                              seed=1, initial_soc=0.55, dt=DT,
                              observability=observability)
        t0 = time.perf_counter()
        system.run()
        return system, time.perf_counter() - t0

    # Best-of-2 minima, same rationale as the invariant-checker gate.
    plain, plain_s = timed_obs_run(None)
    observed, observed_s = timed_obs_run(Observability())
    plain_s = min(plain_s, timed_obs_run(None)[1])
    observed_s = min(observed_s, timed_obs_run(Observability())[1])
    overhead = observed_s / plain_s - 1.0

    obs = observed.obs
    banner("Observability overhead (BENCH cell, span stride "
           f"{obs.tracer.stride})")
    row("disabled", f"{plain_s:.2f} s")
    row("enabled", f"{observed_s:.2f} s",
        f"{overhead * 100:+.1f} %  ({obs.tracer.sampled_ticks} ticks "
        f"sampled, {len(obs.decisions)} decisions)")

    assert plain.obs is None
    assert trace_hash(plain) == trace_hash(observed)
    # The instruments really ran: every tick counted, 1-in-stride sampled,
    # and the controllers routed decisions through the log.
    ticks_run = observed.engine.clock.step_index
    assert obs.tracer.ticks_seen == ticks_run > 0
    assert obs.tracer.sampled_ticks >= ticks_run // obs.tracer.stride
    assert {r["span"] for r in obs.tracer.report_rows()} >= {
        "insure", "plant", "controller.sense"}
    assert len(obs.decisions) > 0
    assert overhead < 0.05, f"observability overhead {overhead * 100:.1f}% >= 5%"


def test_cache_key_distinguishes_configurations(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    keys = {
        cache_key("fullsystem.run_single", controller=ctrl, seed=seed, dt=DT)
        for ctrl in ("insure", "baseline")
        for seed in (1, 2)
    }
    assert len(keys) == 4
    assert RunCache(tmp_path).entry_count() == 0  # keys alone store nothing
