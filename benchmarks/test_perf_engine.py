"""Performance smoke: tick throughput, cold-run wall time, cache replay.

Not a paper figure — this guards the fast simulation core itself.  It
measures one deterministic full-system day (the Figure 20 "high solar"
cell), derives sustained ticks/second, then replays the identical
configuration through the content-addressed run cache and checks the
replay is effectively free.  Results land in ``BENCH_engine.json`` at the
repository root so successive runs can be compared.
"""

import json
import time
from pathlib import Path

from conftest import banner, row

from repro.experiments.fullsystem import run_single
from repro.sim.cache import RunCache, cache_key

#: One simulated day at dt=5 s.
DAY_SECONDS = 24 * 3600.0
DT = 5.0
TICKS = int(DAY_SECONDS / DT)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def test_engine_perf_smoke(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    t0 = time.perf_counter()
    cold = run_single("insure", "seismic", "sunny", 1000.0, seed=1, dt=DT)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_single("insure", "seismic", "sunny", 1000.0, seed=1, dt=DT)
    warm_s = time.perf_counter() - t0

    ticks_per_s = TICKS / cold_s

    banner("Engine performance smoke (Figure 20 high-solar cell)")
    row("cold run", f"{cold_s:.2f} s", f"{ticks_per_s:,.0f} ticks/s")
    row("cache replay", f"{warm_s * 1000:.1f} ms")

    BENCH_PATH.write_text(json.dumps({
        "cell": "fullsystem.run_single(insure, seismic, sunny, 1000W, seed=1)",
        "ticks": TICKS,
        "cold_seconds": round(cold_s, 4),
        "ticks_per_second": round(ticks_per_s, 1),
        "cache_replay_seconds": round(warm_s, 4),
    }, indent=2) + "\n")

    # The replay must be served from disk, bit-identical and near-instant.
    assert warm == cold
    assert warm_s < 0.5
    # Generous floor: the optimised kernel sustains ~20k ticks/s on one
    # modest core; trip only on order-of-magnitude regressions.
    assert ticks_per_s > 4000, f"engine too slow: {ticks_per_s:,.0f} ticks/s"


def test_cache_key_distinguishes_configurations(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    keys = {
        cache_key("fullsystem.run_single", controller=ctrl, seed=seed, dt=DT)
        for ctrl in ("insure", "baseline")
        for seed in (1, 2)
    }
    assert len(keys) == 4
    assert RunCache(tmp_path).entry_count() == 0  # keys alone store nothing
