"""Table 6: day-long operation logs, Opt versus No-Opt."""

from conftest import banner

from repro.experiments.table6 import format_table6, run_table6


def test_table6_daylong_logs(benchmark):
    """Paper: the optimisation performs far more control operations
    (47-51 power ctrl vs 10-12), trades a little effective energy for a
    healthier buffer (lower voltage sigma, higher end-of-day voltage)."""
    cells = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    banner("Table 6 — day-long logs (paper layout)")
    print(format_table6(cells))

    by_key = {(c.day, c.scheme): c.summary for c in cells}
    for day in ("sunny", "cloudy", "rainy"):
        opt = by_key[(day, "Opt")]
        non = by_key[(day, "Non-Opt")]
        # Buffer health: Opt's worst sag stays in the same band as
        # No-Opt's (both protected), never dramatically deeper.
        assert opt.min_battery_voltage >= non.min_battery_voltage - 0.25
        # Lifetime: the optimisation projects a longer service life.
        assert opt.projected_life_days >= non.projected_life_days * 0.95
        # Voltage stability: No-Opt's sigma is markedly higher (the paper
        # reports 12 % higher; our unified baseline swings harder).
        assert non.battery_voltage_sigma > opt.battery_voltage_sigma

    # Opt is the fine-grained scheme: on the days with enough energy to
    # manage (sunny/cloudy), its VM-level control activity dominates.
    opt_vm = sum(by_key[(d, "Opt")].vm_ctrl_times for d in ("sunny", "cloudy"))
    non_vm = sum(by_key[(d, "Non-Opt")].vm_ctrl_times for d in ("sunny", "cloudy"))
    assert opt_vm > non_vm
    # And it converts the same solar budget into more effective energy.
    for day in ("sunny", "cloudy", "rainy"):
        assert (
            by_key[(day, "Opt")].effective_energy_kwh
            > by_key[(day, "Non-Opt")].effective_energy_kwh
        )

    # Energies scale with the day's solar budget (7.9 > 5.9 > 3.0 kWh).
    assert (
        by_key[("sunny", "Opt")].solar_energy_kwh
        > by_key[("cloudy", "Opt")].solar_energy_kwh
        > by_key[("rainy", "Opt")].solar_energy_kwh
    )
    # Effective energy is always a subset of load energy.
    for summary in by_key.values():
        assert summary.effective_energy_kwh <= summary.load_energy_kwh + 1e-9
