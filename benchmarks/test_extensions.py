"""Extension experiments: the paper's discussion items, quantified.

* §6.2 / Table 7 extrapolation: "by using low-power servers, InSURE can
  improve data throughput by 5x-15x" — measured as a full-day pod swap.
* Figure 6's secondary power input: what a diesel backup buys on a rainy
  day, and what it costs.
"""

from conftest import banner, row

from repro.experiments.extensions import run_backup_day, run_heterogeneous_day


def test_extension_low_power_pod(benchmark):
    result = benchmark.pedantic(run_heterogeneous_day, rounds=1, iterations=1)
    banner("Extension — Core i7 pod vs Xeon pod, same cloudy day & buffer")
    row("", "Xeon pod", "i7 pod")
    row("uptime", f"{result.xeon.availability_pct:.0f}%",
        f"{result.i7.availability_pct:.0f}%")
    row("throughput (GB/h)", f"{result.xeon.throughput_gb_per_hour:.2f}",
        f"{result.i7.throughput_gb_per_hour:.2f}")
    row("load energy (kWh)", f"{result.xeon.load_energy_kwh:.2f}",
        f"{result.i7.load_energy_kwh:.2f}")
    row("throughput gain", f"{result.throughput_gain:.1f}x")
    row("GB-per-kWh gain (paper 5-15x)", f"{result.perf_per_kwh_gain:.1f}x")

    assert result.throughput_gain > 3.0
    assert 4.0 <= result.perf_per_kwh_gain <= 20.0
    assert result.i7.uptime_fraction > result.xeon.uptime_fraction


def test_extension_secondary_power(benchmark):
    result = benchmark.pedantic(run_backup_day, rounds=1, iterations=1)
    banner("Extension — rainy day with a diesel backup (Fig. 6 secondary)")
    row("", "solar only", "with backup")
    row("uptime", f"{result.solar_only.availability_pct:.0f}%",
        f"{result.with_backup.availability_pct:.0f}%")
    row("processed (GB)", f"{result.solar_only.processed_gb:.1f}",
        f"{result.with_backup.processed_gb:.1f}")
    row("fuel burned", f"{result.fuel_litres:.1f} L "
        f"(${result.fuel_cost_usd:.0f}, {result.genset_starts} start(s))")

    assert result.uptime_gain > 0.1
    assert result.with_backup.processed_gb > result.solar_only.processed_gb
    assert 0.0 < result.fuel_cost_usd < 100.0


def test_extension_storage_pressure(benchmark):
    """An undersized raw-data buffer turns availability into data loss:
    the unified baseline's dark recharge windows overwrite footage that
    InSURE, serving through them, captures."""
    from repro.experiments.extensions import run_storage_pressure_day

    result = benchmark.pedantic(run_storage_pressure_day, rounds=1, iterations=1)
    banner("Extension — 12 cameras, 10 GB raw-data buffer")
    row("", "InSURE", "baseline")
    row("uptime", f"{result.insure.availability_pct:.0f}%",
        f"{result.baseline.availability_pct:.0f}%")
    row("footage dropped (GB)", f"{result.insure.dropped_gb:.1f}",
        f"{result.baseline.dropped_gb:.1f}")
    row("loss avoided by InSURE", f"{result.loss_reduction * 100:.0f}%")

    assert result.loss_reduction > 0.25
    assert result.insure.dropped_gb > 0.0
