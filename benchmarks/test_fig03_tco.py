"""Figure 3: cost benefits of deploying standalone InS."""

from conftest import banner, row

from repro.cost.energy import DIESEL, FUEL_CELL, SOLAR_BATTERY, energy_tco
from repro.cost.it import it_tco_timeline


def test_fig3a_it_tco(benchmark):
    """Figure 3(a): IT-related TCO over 1-5 years (thousands of $)."""
    timeline = benchmark(it_tco_timeline)
    banner("Figure 3(a) — IT TCO, $k  (paper: in-situ saves >55% / ~95%)")
    years = (1, 2, 3, 4, 5)
    row("year", *years)
    for name, series in timeline.items():
        row(name, *[f"{v:,.0f}" for v in series])

    sa, insitu_sa = timeline["Satellite(SA)"][-1], timeline["InSitu + SA"][-1]
    cell, insitu_4g = timeline["Cellular(4G)"][-1], timeline["InSitu + 4G"][-1]
    assert 1.0 - insitu_sa / sa >= 0.55
    assert 1.0 - insitu_4g / cell >= 0.90
    # Over a million dollars saved in five years (values are in $k).
    assert (cell - insitu_4g) > 1_000.0


def test_fig3b_energy_tco(benchmark):
    """Figure 3(b): energy-related TCO over 1-11 years."""
    years = (1, 3, 5, 7, 9, 11)

    def run():
        return {
            "In-Situ": [energy_tco(SOLAR_BATTERY, y) for y in years],
            "Fuel Cell": [energy_tco(FUEL_CELL, y) for y in years],
            "Diesel": [energy_tco(DIESEL, y) for y in years],
        }

    series = benchmark(run)
    banner("Figure 3(b) — energy TCO, $  (paper: FC most expensive, "
           "in-situ cheapest long-run)")
    row("year", *years)
    for name, values in series.items():
        row(name, *[f"{v:,.0f}" for v in values])

    # Shape: fuel cell dominates cost; solar+battery wins from ~year 3 on.
    for i, _ in enumerate(years):
        assert series["Fuel Cell"][i] >= series["In-Situ"][i]
    assert series["In-Situ"][2] < series["Diesel"][2]
    assert series["In-Situ"][-1] < series["Diesel"][-1] < series["Fuel Cell"][-1]
