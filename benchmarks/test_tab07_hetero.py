"""Table 7: legacy Xeon versus low-power Core i7 node."""

import pytest
from conftest import banner, row

from repro.experiments.table7 import efficiency_gains, run_table7

PAPER = {
    ("dedup", "xeon-dl380"): (97.0, 360.0, 277.0),
    ("dedup", "core-i7"): (48.0, 46.0, 4400.0),
    ("x264", "xeon-dl380"): (4.6, 350.0, 12.4),
    ("x264", "core-i7"): (4.7, 42.0, 101.3),
    ("bayesian", "xeon-dl380"): (439.0, 356.0, 111.0),
    ("bayesian", "core-i7"): (662.0, 42.0, 621.0),
}


def test_table7_server_heterogeneity(benchmark):
    """Paper: the i7 node improves data-per-kWh by 5x-15x."""
    rows = benchmark(run_table7)
    banner("Table 7 — Xeon vs Core i7  (exe time, power, GB/kWh)")
    row("", "exe (s)", "paper", "power (W)", "paper", "GB/kWh", "paper")
    for item in rows:
        p_exe, p_pwr, p_eff = PAPER[(item.benchmark, item.server)]
        row(f"{item.benchmark} / {item.server}",
            f"{item.exe_time_s:.1f}", f"{p_exe:.1f}",
            f"{item.avg_power_w:.0f}", f"{p_pwr:.0f}",
            f"{item.gb_per_kwh:.0f}", f"{p_eff:.0f}")

    gains = efficiency_gains(rows)
    banner(f"Energy-efficiency gains (paper: 5x-15x): "
           f"{ {k: round(v, 1) for k, v in gains.items()} }")

    # Exe times were calibrated from the paper's measurements: tight match.
    indexed = {(r.benchmark, r.server): r for r in rows}
    for key, (p_exe, p_pwr, _) in PAPER.items():
        assert indexed[key].exe_time_s == pytest.approx(p_exe, rel=0.06)
        assert indexed[key].avg_power_w == pytest.approx(p_pwr, rel=0.35)
    # The headline: gains within (or near) the paper's 5x-15x band.
    assert all(4.0 <= g <= 16.0 for g in gains.values())
    # The i7 is not universally faster (bayes is slower) yet always wins
    # on efficiency — the paper's "interesting observation".
    assert indexed[("bayesian", "core-i7")].exe_time_s > indexed[
        ("bayesian", "xeon-dl380")
    ].exe_time_s
    assert all(g > 1.0 for g in gains.values())
