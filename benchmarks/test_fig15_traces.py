"""Figure 15: solar traces for evaluating micro benchmarks."""

import numpy as np
from conftest import banner, row

from repro.solar.traces import paper_high_trace, paper_low_trace


def test_fig15_solar_trace_calibration(benchmark):
    """Paper: high generation averages 1114 W, low 427 W, with the low
    trace showing heavier relative variability."""

    def run():
        return paper_high_trace(), paper_low_trace()

    high, low = benchmark(run)
    banner("Figure 15 — solar day traces")
    row("", "high", "low")
    row("mean power (W) [paper 1114/427]",
        f"{high.mean_power_w:.0f}", f"{low.mean_power_w:.0f}")
    row("daily energy (kWh)", f"{high.energy_kwh:.2f}", f"{low.energy_kwh:.2f}")
    row("peak power (W)", f"{high.power_w.max():.0f}", f"{low.power_w.max():.0f}")
    cv_high = float(np.std(high.power_w) / np.mean(high.power_w))
    cv_low = float(np.std(low.power_w) / np.mean(low.power_w))
    row("coefficient of variation", f"{cv_high:.2f}", f"{cv_low:.2f}")

    assert high.mean_power_w == 1114.0 or abs(high.mean_power_w - 1114.0) < 1.0
    assert abs(low.mean_power_w - 427.0) < 1.0
    # The cloudy low trace is relatively much more variable.
    assert cv_low > cv_high
    # Both traces span the paper's 7:00-20:00 daytime window.
    assert high.duration_s == low.duration_s
    assert abs(high.duration_s - 13 * 3600.0) < 60.0
