"""Figures 17-19: power-management effectiveness on micro benchmarks.

Paper: service availability improves ~41 % (high solar) / ~51 % (low);
e-Buffer energy availability ~41 %; expected service life 21-24 %.
"""

from conftest import banner, row

from repro.experiments.micro_sweep import run_micro_sweep, sweep_averages
from repro.workloads.micro import FIGURE17_BENCHMARKS


def test_fig17_18_19_micro_sweep(benchmark):
    comparisons = benchmark.pedantic(
        lambda: run_micro_sweep(FIGURE17_BENCHMARKS), rounds=1, iterations=1
    )
    averages = sweep_averages(comparisons)

    banner("Figures 17-19 — InSURE improvement over unoptimised baseline")
    row("", "avail (Fig17)", "eBuffer (Fig18)", "life (Fig19)")
    for comp in comparisons:
        row(f"{comp.benchmark} [{comp.solar_level}]",
            f"{comp.availability_improvement * 100:+.0f}%",
            f"{comp.energy_availability_improvement * 100:+.0f}%",
            f"{comp.service_life_improvement * 100:+.0f}%")
    for level in ("high", "low"):
        avg = averages[level]
        row(f"avg [{level}]  (paper ~+41/+41/+22%)",
            f"{avg['availability'] * 100:+.0f}%",
            f"{avg['energy_availability'] * 100:+.0f}%",
            f"{avg['service_life'] * 100:+.0f}%")

    high, low = averages["high"], averages["low"]
    # Figure 17 shape: InSURE strictly improves availability on average,
    # and the improvement grows when solar generation is low.
    assert high["availability"] > 0.05
    assert low["availability"] > high["availability"]
    # Figure 18 shape: usable buffer energy improves on average.
    assert high["energy_availability"] > 0.10
    # Figure 19 shape: service life improves on average at both levels.
    assert high["service_life"] > 0.10
    assert low["service_life"] > 0.10
    # Per-benchmark: availability never regresses badly anywhere.
    for comp in comparisons:
        assert comp.availability_improvement > -0.10, comp.benchmark
