"""Compare a fresh engine benchmark against the committed baseline.

The CI ``bench`` job preserves the committed ``BENCH_engine.json`` as the
baseline, reruns the perf smoke (which rewrites the file in place), then
calls this script to gate the throughput delta::

    python benchmarks/compare_bench.py bench-baseline.json BENCH_engine.json

Exit status 1 means the fresh run's ``ticks_per_second`` fell more than
``--max-slowdown`` (default 25%, overridable via the
``REPRO_BENCH_MAX_SLOWDOWN`` env var) below the baseline.  Speedups and
small wobble pass; refresh the committed baseline deliberately when the
engine genuinely gets faster or slower (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

ENV_MAX_SLOWDOWN = "REPRO_BENCH_MAX_SLOWDOWN"
DEFAULT_MAX_SLOWDOWN = 0.25


def _default_max_slowdown() -> float:
    raw = os.environ.get(ENV_MAX_SLOWDOWN, "").strip()
    if not raw:
        return DEFAULT_MAX_SLOWDOWN
    try:
        return float(raw)
    except ValueError:
        print(f"ignoring bad {ENV_MAX_SLOWDOWN}={raw!r}", file=sys.stderr)
        return DEFAULT_MAX_SLOWDOWN


def load_bench(path: Path) -> dict:
    record = json.loads(path.read_text(encoding="utf-8"))
    if "ticks_per_second" not in record:
        raise SystemExit(f"{path}: not a benchmark record (no ticks_per_second)")
    return record


def compare(baseline: dict, fresh: dict, max_slowdown: float) -> tuple[bool, str]:
    """Return (ok, report).  ``ok`` is False on a gated regression."""
    base_tps = float(baseline["ticks_per_second"])
    fresh_tps = float(fresh["ticks_per_second"])
    slowdown = (base_tps - fresh_tps) / base_tps if base_tps > 0 else 0.0
    lines = [
        f"{'metric':24s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}",
        "-" * 60,
    ]
    for key in ("ticks_per_second", "cold_seconds", "cache_replay_seconds"):
        if key not in baseline or key not in fresh:
            continue
        base_value = float(baseline[key])
        fresh_value = float(fresh[key])
        delta = (fresh_value - base_value) / base_value if base_value else 0.0
        lines.append(
            f"{key:24s} {base_value:12,.4g} {fresh_value:12,.4g} {delta:+7.1%}"
        )
    lines.append("")
    if slowdown > max_slowdown:
        lines.append(
            f"FAIL: throughput fell {slowdown:.1%} below baseline "
            f"(gate: {max_slowdown:.0%}). If this slowdown is intentional, "
            f"refresh BENCH_engine.json and commit it."
        )
        return False, "\n".join(lines)
    lines.append(
        f"ok: throughput within {max_slowdown:.0%} gate "
        f"(slowdown {slowdown:+.1%})"
    )
    return True, "\n".join(lines)


def render_markdown(
    baseline: dict, fresh: dict, ok: bool, max_slowdown: float, title: str
) -> str:
    """The comparison as a Markdown section (for $GITHUB_STEP_SUMMARY)."""
    lines = [
        f"### {title}",
        "",
        "| metric | baseline | fresh | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    for key in ("ticks_per_second", "cold_seconds", "cache_replay_seconds"):
        if key not in baseline or key not in fresh:
            continue
        base_value = float(baseline[key])
        fresh_value = float(fresh[key])
        delta = (fresh_value - base_value) / base_value if base_value else 0.0
        lines.append(
            f"| `{key}` | {base_value:,.4g} | {fresh_value:,.4g} | {delta:+.1%} |"
        )
    verdict = "✅ within gate" if ok else "❌ **regression**"
    lines += ["", f"{verdict} (allowed slowdown: {max_slowdown:.0%})", ""]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed benchmark JSON")
    parser.add_argument("fresh", type=Path, help="freshly produced benchmark JSON")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=_default_max_slowdown(),
        help=f"allowed fractional throughput drop (default {DEFAULT_MAX_SLOWDOWN}, "
        f"or the {ENV_MAX_SLOWDOWN} env var)",
    )
    parser.add_argument(
        "--markdown-out",
        type=Path,
        default=None,
        help="append the comparison as a Markdown section to this file "
        "(point it at $GITHUB_STEP_SUMMARY in CI)",
    )
    parser.add_argument(
        "--title",
        default=None,
        help="Markdown section heading (default: the fresh file's stem)",
    )
    args = parser.parse_args(argv)
    baseline = load_bench(args.baseline)
    fresh = load_bench(args.fresh)
    ok, report = compare(baseline, fresh, args.max_slowdown)
    print(report)
    if args.markdown_out is not None:
        title = args.title or f"bench: {args.fresh.stem}"
        with args.markdown_out.open("a", encoding="utf-8") as fh:
            fh.write(render_markdown(baseline, fresh, ok, args.max_slowdown, title))
            fh.write("\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
