"""Table 2: seismic data analysis at the same 2 kWh energy budget."""

from conftest import banner, row

from repro.experiments.fixed_config import run_fixed_config
from repro.workloads import SeismicAnalysis


def test_table2_seismic_vm_configs(benchmark):
    """Paper: 8 VM — 1397 W, 57 % availability, 14.0 GB/h;
    4 VM — 696 W, 100 % availability (better), 16.5 GB/h."""

    def run():
        return {
            vms: run_fixed_config(SeismicAnalysis(arrivals_per_day=()), vms)
            for vms in (8, 4)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Table 2 — seismic throughput at 2 kWh")
    row("", "8 VM (High)", "4 VM (Low)")
    row("avg power (W)  [paper 1397/696]",
        f"{rows[8].avg_power_w:.0f}", f"{rows[4].avg_power_w:.0f}")
    row("availability   [paper 57%/100%]",
        f"{rows[8].availability * 100:.0f}%", f"{rows[4].availability * 100:.0f}%")
    row("throughput GB/h [paper 14.0/16.5]",
        f"{rows[8].throughput_gb_per_hour:.1f}",
        f"{rows[4].throughput_gb_per_hour:.1f}")
    row("protection stops",
        rows[8].protection_stops, rows[4].protection_stops)

    # Shape: the conservative config wins on availability AND throughput —
    # high power triggers the checkpoint storms that stall progress.
    assert rows[8].avg_power_w > 2 * rows[4].avg_power_w * 0.95
    assert rows[4].availability > rows[8].availability + 0.2
    assert rows[4].throughput_gb_per_hour >= rows[8].throughput_gb_per_hour * 0.98
    assert rows[8].protection_stops > 0
