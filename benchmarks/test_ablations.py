"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches off (or fixes) one InSURE mechanism and shows the
direction of the effect the paper attributes to it.
"""

from conftest import banner, row

from repro.core.energy_manager import InsureParams
from repro.core.spatial import SpatialParams
from repro.core.system import build_system
from repro.core.temporal import TemporalParams
from repro.experiments.charging import charging_time_hours
from repro.solar.traces import make_day_trace
from repro.workloads import VideoSurveillance


def day_run(insure_params=None, seed=21, mean_w=500.0):
    trace = make_day_trace("cloudy", dt_seconds=5.0, seed=seed,
                           target_mean_w=mean_w)
    system = build_system(trace, VideoSurveillance(), controller="insure",
                          seed=seed, initial_soc=0.55,
                          insure_params=insure_params)
    return system.run()


def test_ablation_adaptive_batch_sizing(benchmark):
    """Figure 10's N = P_G/P_PC versus always-batch and always-single."""

    def run():
        return {
            "adaptive-would-pick-1 @150W": charging_time_hours(1, 150.0),
            "fixed-all @150W": charging_time_hours(3, 150.0),
            "adaptive-would-pick-3 @800W": charging_time_hours(3, 800.0),
            "fixed-one @800W": charging_time_hours(1, 800.0),
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation — adaptive charge batch sizing (hours to 90 %)")
    for name, hours in times.items():
        row(name, f"{hours:.2f} h")
    # The budget-matched batch size wins at both operating points.
    assert times["adaptive-would-pick-1 @150W"] < times["fixed-all @150W"]
    assert times["adaptive-would-pick-3 @800W"] < times["fixed-one @800W"]


def test_ablation_discharge_capping(benchmark):
    """TPM discharge capping trades throughput for buffer life."""

    def run():
        capped = day_run()
        uncapped = day_run(InsureParams(
            temporal=TemporalParams(cap_c_rate=2.0)  # cap never binds
        ))
        return capped, uncapped

    capped, uncapped = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation — TPM discharge capping")
    row("", "capped (paper)", "uncapped")
    row("projected life (days)", f"{capped.projected_life_days:.0f}",
        f"{uncapped.projected_life_days:.0f}")
    row("min voltage (V)", f"{capped.min_battery_voltage:.2f}",
        f"{uncapped.min_battery_voltage:.2f}")
    row("throughput (GB/h)", f"{capped.throughput_gb_per_hour:.2f}",
        f"{uncapped.throughput_gb_per_hour:.2f}")

    # Capping protects the buffer: longer life, shallower sags.
    assert capped.projected_life_days >= uncapped.projected_life_days
    assert capped.min_battery_voltage >= uncapped.min_battery_voltage - 0.05


def test_ablation_elastic_threshold(benchmark):
    """§3.3: with a worn bank whose cabinets all sit past their Eq. 1
    allowance, the rigid threshold starves the load while the elastic
    one trades a little battery life for continued processing."""

    def run_worn(elastic):
        trace = make_day_trace("cloudy", dt_seconds=5.0, seed=21,
                               target_mean_w=500.0)
        system = build_system(
            trace, VideoSurveillance(), controller="insure", seed=21,
            initial_soc=0.45,
            insure_params=InsureParams(spatial=SpatialParams(elastic=elastic)),
        )
        # Every cabinet is already past its prorated discharge budget.
        for unit in system.bank:
            unit.wear.discharge_ah = 30.0
            system.telemetry.senses[unit.name].discharge_ah = 30.0
        return system.run()

    def run():
        return run_worn(True), run_worn(False)

    elastic, rigid = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation — elastic vs rigid discharge threshold (worn bank)")
    row("", "elastic (paper)", "rigid")
    row("processed (GB)", f"{elastic.processed_gb:.1f}", f"{rigid.processed_gb:.1f}")
    row("uptime", f"{elastic.uptime_fraction * 100:.0f}%",
        f"{rigid.uptime_fraction * 100:.0f}%")

    # The elastic threshold unlocks the worn cabinets for charging; the
    # rigid one leaves the buffer unusable and the system solar-bound.
    assert elastic.processed_gb > rigid.processed_gb


def test_ablation_charge_to_level(benchmark):
    """Charging to 90 % before going online versus insisting on 100 %."""

    def run():
        ninety = day_run(InsureParams(spatial=SpatialParams(charge_to_soc=0.90)))
        full = day_run(InsureParams(spatial=SpatialParams(charge_to_soc=0.995)))
        return ninety, full

    ninety, full = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation — charge-to level before online")
    row("", "90% (paper)", "99.5%")
    row("uptime", f"{ninety.uptime_fraction * 100:.0f}%",
        f"{full.uptime_fraction * 100:.0f}%")
    row("curtailed (kWh)", f"{ninety.curtailed_kwh:.2f}", f"{full.curtailed_kwh:.2f}")

    # Insisting on a full charge keeps cabinets in the slow taper longer,
    # delaying their return to the load bus: uptime can only suffer.
    assert ninety.uptime_fraction >= full.uptime_fraction - 0.02
