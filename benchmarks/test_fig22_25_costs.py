"""Figures 22-25: cost benefits of InSURE."""

from conftest import banner, row

from repro.cost.energy import annual_depreciation, annual_depreciation_total
from repro.cost.scaleout import (
    amortized_cloud_cost,
    amortized_scaleout_cost,
    cloud_cost,
    crossover_rate,
    insitu_cost,
    tco_vs_data_rate,
)
from repro.cost.scenarios import SCENARIOS, all_scenario_savings


def test_fig22_annual_depreciation(benchmark):
    """Paper: DG-based InS costs ~20 % more, FC-based ~24 % more."""
    totals = benchmark(
        lambda: {s: annual_depreciation_total(s) for s in ("InSURE", "DG", "FC")}
    )
    banner("Figure 22 — annual depreciation cost ($/yr)")
    for system, total in totals.items():
        extra = total / totals["InSURE"] - 1.0
        row(system, f"${total:,.0f}", f"{extra * 100:+.0f}% vs InSURE")
    breakdown = annual_depreciation("InSURE")
    battery_share = breakdown["battery"] / totals["InSURE"]
    pv_share = (breakdown["pv_panels"] + breakdown["inverter"]) / totals["InSURE"]
    row("e-Buffer share (paper ~9%)", f"{battery_share * 100:.0f}%")
    row("PV+inverter share (paper ~8%)", f"{pv_share * 100:.0f}%")

    assert 0.15 <= totals["DG"] / totals["InSURE"] - 1.0 <= 0.25
    assert 0.20 <= totals["FC"] / totals["InSURE"] - 1.0 <= 0.30
    assert 0.07 <= battery_share <= 0.11
    assert 0.06 <= pv_share <= 0.10


def test_fig23_scaleout_vs_cloud(benchmark):
    """Paper: scaling InSURE out beats the cloud at every sunshine
    fraction, saving up to 60 %."""
    fractions = (1.0, 0.8, 0.6, 0.4)
    results = benchmark(
        lambda: {ssf: amortized_scaleout_cost(ssf) for ssf in fractions}
    )
    cloud = amortized_cloud_cost()
    banner("Figure 23 — amortized cost ($/yr), 240 GB/day demand")
    row("relying on cloud", f"${cloud:,.0f}")
    for ssf, cost in results.items():
        row(f"scaling out @ {ssf * 100:.0f}% sunshine", f"${cost:,.0f}",
            f"saves {100 * (1 - cost / cloud):.0f}%")

    costs = [results[s] for s in fractions]
    assert costs == sorted(costs)  # dimmer sites need more pods
    assert all(c < cloud for c in costs)
    assert 1.0 - costs[0] / cloud >= 0.60


def test_fig24_tco_crossover(benchmark):
    """Paper: the cost-effective zone of InSURE starts at ~0.9 GB/day and
    reaches ~96 % savings at 0.5 TB/day."""
    curves = benchmark(tco_vs_data_rate)
    rate = crossover_rate()
    banner("Figure 24 — TCO vs data generation rate (3-year deployment)")
    rates = (0.5, 5.0, 50.0, 500.0)
    row("GB/day", *rates)
    for name, series in curves.items():
        row(name, *[f"${v:,.0f}" for v in series])
    row("crossover (paper ~0.9 GB/day)", f"{rate:.2f} GB/day")
    saving = 1.0 - insitu_cost(500.0) / cloud_cost(500.0)
    row("saving at 500 GB/day (paper ~96%)", f"{saving * 100:.1f}%")

    assert 0.5 <= rate <= 1.5
    assert saving >= 0.90
    # Below the crossover the cloud wins; above, in-situ wins.
    assert curves["cloud"][0] < curves["insitu-100%"][0]
    assert curves["cloud"][-1] > curves["insitu-100%"][-1]


def test_fig25_application_scenarios(benchmark):
    """Paper: application-dependent savings from 15 % to 97 %."""
    savings = benchmark(all_scenario_savings)
    banner("Figure 25 — per-scenario cost savings")
    for key, saving in savings.items():
        scenario = SCENARIOS[key]
        lo, hi = scenario.paper_savings_range
        row(f"{key}: {scenario.name}",
            f"{saving * 100:.0f}%", f"paper {lo * 100:.0f}-{hi * 100:.0f}%")

    for key, saving in savings.items():
        lo, hi = SCENARIOS[key].paper_savings_range
        assert lo - 0.12 <= saving <= hi + 0.12, (key, saving)
    # Long, data-heavy deployments save the most.
    assert savings["E"] >= savings["C"] >= savings["B"]
