"""Figure 14: InSURE power-behaviour demonstrations."""

from conftest import banner, row

from repro.experiments.behavior import (
    run_fig14a_prioritisation,
    run_fig14b_balancing,
)


def test_fig14a_charge_prioritisation(benchmark):
    """Figure 14(a): the SPM gives charging priority to low-SoC cabinets
    and charges them in budget-sized batches."""
    result = benchmark.pedantic(run_fig14a_prioritisation, rounds=1, iterations=1)
    banner("Figure 14(a) — charge prioritisation")
    row("initial SoCs", *[f"{n}={s:.2f}" for n, s in result.initial_socs.items()])
    row("SPM charge order", *result.charge_order)

    assert result.charge_order, "SPM never selected a cabinet for charging"
    # The first cabinet selected is the emptiest one.
    lowest = min(result.initial_socs, key=result.initial_socs.get)
    assert result.charge_order[0] == lowest


def test_fig14b_discharge_balancing(benchmark):
    """Figure 14(b): aggregated per-cabinet discharge stays balanced."""
    result = benchmark.pedantic(run_fig14b_balancing, rounds=1, iterations=1)
    banner("Figure 14(b) — balanced usage (per-cabinet discharge, Ah)")
    row("InSURE per-unit Ah", *[f"{v:.1f}" for v in result.insure_per_unit_ah])
    row("InSURE imbalance (max-min)", f"{result.insure_imbalance_ah:.2f} Ah")

    per_unit = result.insure_per_unit_ah
    assert max(per_unit) > 0.0
    # Balanced usage: the spread stays within ~30 % of the heaviest unit.
    assert result.insure_imbalance_ah <= 0.3 * max(per_unit)
